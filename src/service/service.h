// The query-serving sketch service: wraps ShardEngine<FagmsSketch> in a
// long-running process with HTTP endpoints, following SF-sketch's
// fat-ingest / slim-query split.
//
//   * Ingest path ("fat"): HTTP POST /ingest (or a CLI feeder) pushes
//     tuples into a blocking PushSource; one ingest thread runs the shard
//     engine over it — positional shedding, adaptive control, fault
//     injection, and checkpointing all work exactly as in offline runs.
//   * Query path ("slim"): at phase-locked quiesce boundaries the engine
//     publishes an immutable merged-sketch snapshot into an RcuCell
//     (src/service/snapshot.h); query handlers borrow it wait-free and
//     answer from the snapshot alone. Queries never touch the write path.
//
// Every estimate endpoint returns the Prop 13/14-corrected estimate at the
// realized rate p̂ = kept/position plus its Eq 25/26 CLT interval. The
// interval needs the pre-shedding frequency moments ("known in experiments,
// estimated in production" — src/stream/shed_controller.h); callers may
// supply exact moments, otherwise the service substitutes conservative
// plug-in moments derived from its own estimates (documented in
// docs/SERVICE.md; the `moments` response field says which was used).
//
// Bit-exactness: because shedding is positional and the distinct counter's
// seed derives from the root seed, the response payload for a given
// (configuration, stream prefix) is byte-identical to what `sketchsample
// offline` computes from the same data — the response builders below are
// the single code path both sides use, and the service-smoke CI job holds
// them to exact equality.
#ifndef SKETCHSAMPLE_SERVICE_SERVICE_H_
#define SKETCHSAMPLE_SERVICE_SERVICE_H_

#include "src/util/atomics_policy.h"
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/core/subpop_estimators.h"
#include "src/service/push_source.h"
#include "src/service/router.h"
#include "src/service/snapshot.h"
#include "src/stream/shard_engine.h"
#include "src/util/json.h"

namespace sketchsample {

/// First four frequency moments (Σf, Σf², Σf³, Σf⁴) of a pre-shedding
/// stream, for evaluating the Eq 25/26 variances exactly.
struct StreamMoments {
  double m1 = 0;
  double m2 = 0;
  double m3 = 0;
  double m4 = 0;
};

/// One immutable published view: everything a query needs, by value.
struct ServiceSnapshot {
  FagmsSketch sketch;
  std::optional<KmvSketch> distinct;
  std::optional<KllSketch> quantile;
  std::optional<KeyedKmvSketch> subpop;
  uint64_t position = 0;
  uint64_t kept = 0;
  uint64_t sequence = 0;
  double p = 1.0;

  /// Realized sampling rate p̂ over the covered prefix.
  double realized_p() const {
    return position > 0
               ? static_cast<double>(kept) / static_cast<double>(position)
               : p;
  }
};

/// Query-time freshness context for degraded-mode stamping. Every answer
/// carries `staleness` (tuples ingested but not yet covered by the snapshot
/// it was computed from) and a `degraded` flag; the estimate itself stays
/// Prop 13/14-corrected on the snapshot either way — degraded marks *stale
/// or shed service*, never a different computation. Offline runs pass the
/// same struct (with the final pushed count), so the shared-builder
/// byte-identity contract holds: at a sealed final state both sides compute
/// staleness 0 and degraded false.
struct QueryFreshness {
  /// Tuples accepted into the ingest source so far.
  uint64_t pushed = 0;
  /// Ingest thread exited (engine stop or error) while ingest was open.
  bool ingest_stalled = false;
  /// The admission controller is shedding or at its inflight cap.
  bool admission_saturated = false;
  /// Staleness bound in tuples; beyond it the answer is degraded
  /// (0 = unbounded — staleness alone never degrades).
  uint64_t freshness_lag = 0;
};

/// Tuples ingested beyond the snapshot's covered prefix.
inline uint64_t SnapshotStaleness(const ServiceSnapshot& snapshot,
                                  const QueryFreshness& fresh) {
  return fresh.pushed > snapshot.position ? fresh.pushed - snapshot.position
                                          : 0;
}

/// True when an answer from `snapshot` must be stamped degraded.
inline bool DegradedAnswer(const ServiceSnapshot& snapshot,
                           const QueryFreshness& fresh) {
  return fresh.admission_saturated || fresh.ingest_stalled ||
         (fresh.freshness_lag > 0 &&
          SnapshotStaleness(snapshot, fresh) > fresh.freshness_lag);
}

struct SketchServiceOptions {
  /// F-AGMS prototype shape (rows medianed, buckets averaged → n = buckets
  /// in the Eq 25/26 variances).
  SketchParams sketch;
  /// Engine configuration: shards, shed_p, root seed, controller,
  /// checkpointing, distinct_k, fault profile — all exactly as offline.
  ShardEngineOptions engine;
  /// Publish cadence in routed tuples (phase-locked to absolute offsets;
  /// 0 = publish only when ingest ends). Queries lag ingest by at most this
  /// many tuples — the price of never locking the write path.
  uint64_t snapshot_every = 8192;
  /// Confidence level when a query does not pass ?level=.
  double default_level = 0.95;
  /// RcuCell reader slots; must cover the HTTP server's max_connections
  /// plus any in-process readers.
  size_t max_readers = 128;
  /// PushSource bound (tuples buffered before POST /ingest blocks).
  size_t push_buffer = 1u << 20;
  /// Serialized reference FagmsSketch for /query/join (empty = endpoint
  /// answers 400). Must be compatible with `sketch`.
  std::vector<uint8_t> join_sketch;
  /// Exact pre-shed moments of the ingested stream (f) and the join
  /// reference stream (g); plug-in estimates are used when absent.
  std::optional<StreamMoments> moments_f;
  std::optional<StreamMoments> moments_g;
  /// Serialized checkpoint to restore before ingesting (kill-and-resume);
  /// the producer must re-push the stream from the beginning — restore
  /// fast-forwards past the checkpointed prefix.
  std::vector<uint8_t> resume;
  /// Degrade answers whose snapshot trails ingest by more than this many
  /// tuples (0 = staleness alone never degrades). A sensible bound is a
  /// small multiple of snapshot_every.
  uint64_t freshness_lag = 0;
};

/// Long-running sketch service. Lifecycle: construct → Register(router) →
/// start HTTP server → Start() → (ingest/queries) → Stop().
class SketchService {
 public:
  /// Validates options (throws std::invalid_argument on a bad join sketch
  /// or level) and publishes the initial empty snapshot.
  explicit SketchService(const SketchServiceOptions& options);
  ~SketchService();

  SketchService(const SketchService&) = delete;
  SketchService& operator=(const SketchService&) = delete;

  /// Registers every endpoint on `router` (handlers owned by the service).
  void Register(Router& router);

  /// Starts the ingest thread: restores from options.resume when set, then
  /// runs the engine over the push source until CloseIngest (or engine
  /// max_tuples).
  void Start();

  /// Closes ingest, joins the ingest thread. Idempotent.
  void Stop();

  /// Direct feeders (CLI file mode, tests) — same stream as POST /ingest.
  size_t Push(const uint64_t* values, size_t n);
  void CloseIngest();

  /// Snapshot registry; tests and in-process probes read with a slot >=
  /// the HTTP server's max_connections to avoid colliding with it.
  RcuCell<ServiceSnapshot>& registry() { return registry_; }

  bool ingest_done() const {
    return ingest_done_.load(MemOrder::kAcquire);
  }
  /// Non-empty when the ingest thread died on an exception.
  std::string ingest_error() const;
  uint64_t pushed() const { return source_.pushed(); }

  const SketchServiceOptions& options() const { return options_; }

 private:
  enum class Endpoint;
  class Handler;
  class Publisher;

  void IngestMain();
  // Publishes a sequence-0 snapshot straight from engine state (initial
  // empty state; restored state after a resume).
  void PublishEngineState();
  HttpResponse Handle(Endpoint endpoint, const HttpRequest& request,
                      const RequestContext& context);
  HttpResponse HandleIngest(const HttpRequest& request);
  HttpResponse HandleStats(const RequestContext& context);
  // Freshness context for a query answered now under `context`.
  QueryFreshness CurrentFreshness(const RequestContext& context) const;

  SketchServiceOptions options_;
  FagmsSketch proto_;
  std::optional<FagmsSketch> reference_;  // /query/join right-hand side
  RcuCell<ServiceSnapshot> registry_;
  PushSource source_;
  std::unique_ptr<Publisher> publisher_;
  std::unique_ptr<ShardEngine<FagmsSketch>> engine_;
  std::vector<std::unique_ptr<Handler>> handlers_;

  std::thread ingest_thread_;
  StdAtomics::Atomic<bool> ingest_done_{false};
  bool started_ = false;
  mutable std::mutex error_mutex_;
  std::string ingest_error_;

  // Exactly-once ingest chunks: per-session next expected sequence number
  // (X-Ingest-Session / X-Ingest-Seq). The mutex spans parse+push for
  // sequenced batches so a session's chunks apply in order exactly once;
  // unsequenced posts bypass it entirely.
  std::mutex ingest_mutex_;
  std::map<uint64_t, uint64_t> ingest_next_seq_;

  StdAtomics::Atomic<uint64_t> queries_selfjoin_{0};
  StdAtomics::Atomic<uint64_t> queries_join_{0};
  StdAtomics::Atomic<uint64_t> queries_point_{0};
  StdAtomics::Atomic<uint64_t> queries_distinct_{0};
  StdAtomics::Atomic<uint64_t> queries_quantile_{0};
  StdAtomics::Atomic<uint64_t> queries_subpop_{0};
  StdAtomics::Atomic<uint64_t> degraded_answers_{0};
  StdAtomics::Atomic<uint64_t> deadline_rejected_{0};
  StdAtomics::Atomic<uint64_t> ingest_duplicates_{0};
};

// ---------------------------------------------------------------------------
// Response builders — the shared online/offline code path. Each returns the
// exact JSON body of the corresponding endpoint (see docs/SERVICE.md for
// the schema).
// ---------------------------------------------------------------------------

JsonValue SelfJoinResponseJson(const ServiceSnapshot& snapshot,
                               const std::optional<StreamMoments>& moments_f,
                               double level,
                               const QueryFreshness& fresh = QueryFreshness());
JsonValue JoinResponseJson(const ServiceSnapshot& snapshot,
                           const FagmsSketch& reference,
                           const std::optional<StreamMoments>& moments_f,
                           const std::optional<StreamMoments>& moments_g,
                           double level,
                           const QueryFreshness& fresh = QueryFreshness());
JsonValue PointResponseJson(const ServiceSnapshot& snapshot, uint64_t key,
                            const std::optional<StreamMoments>& moments_f,
                            double level,
                            const QueryFreshness& fresh = QueryFreshness());
JsonValue DistinctResponseJson(const ServiceSnapshot& snapshot, double level,
                               const QueryFreshness& fresh = QueryFreshness());
/// Quantile answer at rank q in [0, 1]. Requires snapshot.quantile; the
/// rank-error report splits the KLL compaction term from the
/// Bernoulli-sampling CLT term at the realized p̂, and the value-space
/// interval re-queries the sketch at q ∓ ε_total.
JsonValue QuantileResponseJson(const ServiceSnapshot& snapshot, double q,
                               double level,
                               const QueryFreshness& fresh = QueryFreshness());
/// Subpopulation-weight answer for `pred`. Requires snapshot.subpop.
JsonValue SubpopResponseJson(const ServiceSnapshot& snapshot,
                             const SubpopPredicate& pred, double level,
                             const QueryFreshness& fresh = QueryFreshness());

/// Strict decimal uint64 parse (no sign, no whitespace, no overflow).
bool ParseUint64(const std::string& text, uint64_t* out);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SERVICE_SERVICE_H_
