// Deterministic socket-level fault injection for the service layer, in the
// spirit of src/stream/faults.h: the network failures a production HTTP
// service actually sees — short reads and writes, connection resets, and
// bounded delays — as pure functions of a 64-bit seed, so a failing test
// prints its seed and the exact fault sequence reproduces.
//
// Mechanism: the server and client route every socket read/write through
// ChaosRecv/ChaosSend below. With no injector installed (the production
// default) these are the plain syscalls plus one relaxed pointer load.
// Under test, ScopedChaosInjector installs a process-wide ChaosInjector
// whose per-(fd, op) decisions are positional: each fd gets a serial in
// first-use order and each of its operations an index, and the fault draw
// is MixSeed(seed, serial, index) — independent of wall clock and of what
// other connections are doing, so single-connection tests are bit-exact.
//
// Slow-loris clients are the one fault that cannot be injected under the
// victim's own syscalls — the attacker controls the pacing — so tests
// drive those with a raw trickling socket (tests/chaos_test.cc) against
// the server's deadline enforcement.
#ifndef SKETCHSAMPLE_SERVICE_CHAOS_H_
#define SKETCHSAMPLE_SERVICE_CHAOS_H_

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace sketchsample {

/// What to inject and how often; probabilities are per socket operation.
struct ChaosProfile {
  /// P[a recv length is clamped to a strictly short count].
  double partial_read_prob = 0.0;
  /// P[a send length is clamped to a strictly short count].
  double partial_write_prob = 0.0;
  /// P[the operation fails with ECONNRESET instead of running].
  double reset_prob = 0.0;
  /// P[the operation is delayed first], bounded by delay_max_us.
  double delay_prob = 0.0;
  uint64_t delay_max_us = 0;

  /// True when any fault can fire.
  bool Active() const;

  /// Named presets: "none", "mild" (occasional short counts and delays,
  /// rare resets), "harsh" (frequent short counts, delays, and resets).
  /// Throws std::invalid_argument for unknown names.
  static ChaosProfile FromName(const std::string& name);
};

/// Seed-deterministic socket fault injector. Thread-safe: decisions for
/// different fds are independent, and per-fd operation indices are assigned
/// under a lock in arrival order.
class ChaosInjector {
 public:
  ChaosInjector(const ChaosProfile& profile, uint64_t seed);

  /// Chaos-wrapped ::recv / ::send. Identical semantics when no fault
  /// fires; an injected reset returns -1 with errno = ECONNRESET.
  ssize_t Recv(int fd, void* buf, size_t n, int flags);
  ssize_t Send(int fd, const void* buf, size_t n, int flags);

  /// Drops the fd's positional state (call when the socket closes, so a
  /// reused fd number starts a fresh fault stream).
  void OnClose(int fd);

  /// Total faults injected (short counts + resets + delays).
  uint64_t injected() const;

  const ChaosProfile& profile() const { return profile_; }

 private:
  struct FdState {
    uint64_t serial = 0;  // first-use order, the positional stream id
    uint64_t ops = 0;     // operations issued on this fd so far
  };
  struct OpPlan {
    uint64_t delay_us = 0;
    bool reset = false;
    size_t clamped_n = 0;  // 0 = full length
  };
  OpPlan PlanOp(int fd, size_t n, bool is_send);

  ChaosProfile profile_;
  uint64_t seed_;
  mutable std::mutex mutex_;
  std::map<int, FdState> fds_;
  uint64_t next_serial_ = 0;
  uint64_t injected_ = 0;
};

/// Installs `injector` process-wide (nullptr uninstalls). Not owned; the
/// injector must outlive every socket operation that can observe it.
void InstallChaosInjector(ChaosInjector* injector);

/// RAII install/uninstall for tests and the serve/loadgen tools. Either
/// borrows an injector or owns one built from (profile, seed).
class ScopedChaosInjector {
 public:
  explicit ScopedChaosInjector(ChaosInjector* injector) {
    InstallChaosInjector(injector);
  }
  ScopedChaosInjector(const ChaosProfile& profile, uint64_t seed)
      : owned_(new ChaosInjector(profile, seed)) {
    InstallChaosInjector(owned_);
  }
  ~ScopedChaosInjector() {
    InstallChaosInjector(nullptr);
    delete owned_;
  }
  ScopedChaosInjector(const ScopedChaosInjector&) = delete;
  ScopedChaosInjector& operator=(const ScopedChaosInjector&) = delete;

  /// The owned injector (null when borrowing).
  ChaosInjector* injector() const { return owned_; }

 private:
  ChaosInjector* owned_ = nullptr;
};

/// The socket seams the server and client call instead of ::recv/::send/
/// ::close bookkeeping. No injector installed → plain syscalls.
ssize_t ChaosRecv(int fd, void* buf, size_t n, int flags);
ssize_t ChaosSend(int fd, const void* buf, size_t n, int flags);
void ChaosOnClose(int fd);

/// Seed override hook for CI, mirroring FaultSeedFromEnv: reads the decimal
/// SKETCHSAMPLE_CHAOS_SEED environment variable, falling back to `fallback`
/// when unset or malformed. Any failing test must print the chosen seed.
uint64_t ChaosSeedFromEnv(uint64_t fallback);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SERVICE_CHAOS_H_
