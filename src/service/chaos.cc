#include "src/service/chaos.h"

#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "src/util/atomics_policy.h"
#include "src/util/metrics.h"
#include "src/util/rng.h"

namespace sketchsample {

namespace {

// 53-bit uniform in [0, 1) from a mixed draw (Xoshiro256::NextDouble's
// resolution).
double ToUnit(uint64_t mixed) {
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

// Process-wide installation point consulted by the ChaosRecv/ChaosSend
// seams. A single relaxed load on the production path; installs happen
// only in tests and CLI chaos modes, before traffic starts.
StdAtomics::Atomic<ChaosInjector*>& Installed() {
  static StdAtomics::Atomic<ChaosInjector*> installed{nullptr};
  return installed;
}

}  // namespace

bool ChaosProfile::Active() const {
  return partial_read_prob > 0.0 || partial_write_prob > 0.0 ||
         reset_prob > 0.0 || (delay_prob > 0.0 && delay_max_us > 0);
}

ChaosProfile ChaosProfile::FromName(const std::string& name) {
  ChaosProfile profile;
  if (name == "none" || name.empty()) return profile;
  if (name == "mild") {
    profile.partial_read_prob = 0.05;
    profile.partial_write_prob = 0.05;
    profile.reset_prob = 0.001;
    profile.delay_prob = 0.01;
    profile.delay_max_us = 1000;
    return profile;
  }
  if (name == "harsh") {
    profile.partial_read_prob = 0.25;
    profile.partial_write_prob = 0.25;
    profile.reset_prob = 0.01;
    profile.delay_prob = 0.05;
    profile.delay_max_us = 5000;
    return profile;
  }
  throw std::invalid_argument("unknown chaos profile: " + name);
}

ChaosInjector::ChaosInjector(const ChaosProfile& profile, uint64_t seed)
    : profile_(profile), seed_(seed) {}

ChaosInjector::OpPlan ChaosInjector::PlanOp(int fd, size_t n, bool is_send) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = fds_.try_emplace(fd);
  if (inserted) it->second.serial = next_serial_++;
  // Positional draw base: one stream per (fd serial, op index); the four
  // decision draws are sub-streams of it.
  const uint64_t base =
      MixSeed(seed_, (it->second.serial << 24) ^ it->second.ops++);
  OpPlan plan;
  if (profile_.delay_prob > 0.0 && profile_.delay_max_us > 0 &&
      ToUnit(MixSeed(base, 0)) < profile_.delay_prob) {
    plan.delay_us = 1 + MixSeed(base, 1) % profile_.delay_max_us;
    ++injected_;
  }
  if (profile_.reset_prob > 0.0 &&
      ToUnit(MixSeed(base, 2)) < profile_.reset_prob) {
    plan.reset = true;
    ++injected_;
    return plan;
  }
  const double partial_prob =
      is_send ? profile_.partial_write_prob : profile_.partial_read_prob;
  if (n >= 2 && partial_prob > 0.0 &&
      ToUnit(MixSeed(base, 3)) < partial_prob) {
    // A strictly short count: at most half the requested length, never 0.
    plan.clamped_n = 1 + static_cast<size_t>(MixSeed(base, 4) %
                                             std::max<uint64_t>(1, n / 2));
    ++injected_;
  }
  return plan;
}

ssize_t ChaosInjector::Recv(int fd, void* buf, size_t n, int flags) {
  const OpPlan plan = PlanOp(fd, n, /*is_send=*/false);
  if (plan.delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(plan.delay_us));
  }
  if (plan.reset) {
    SKETCHSAMPLE_METRIC_INC("service.chaos.injected");
    errno = ECONNRESET;
    return -1;
  }
  if (plan.clamped_n > 0) {
    SKETCHSAMPLE_METRIC_INC("service.chaos.injected");
    n = std::min(n, plan.clamped_n);
  }
  return ::recv(fd, buf, n, flags);
}

ssize_t ChaosInjector::Send(int fd, const void* buf, size_t n, int flags) {
  const OpPlan plan = PlanOp(fd, n, /*is_send=*/true);
  if (plan.delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(plan.delay_us));
  }
  if (plan.reset) {
    SKETCHSAMPLE_METRIC_INC("service.chaos.injected");
    errno = ECONNRESET;
    return -1;
  }
  if (plan.clamped_n > 0) {
    SKETCHSAMPLE_METRIC_INC("service.chaos.injected");
    n = std::min(n, plan.clamped_n);
  }
  return ::send(fd, buf, n, flags);
}

void ChaosInjector::OnClose(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  fds_.erase(fd);
}

uint64_t ChaosInjector::injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injected_;
}

void InstallChaosInjector(ChaosInjector* injector) {
  Installed().store(injector, MemOrder::kRelease);
}

ssize_t ChaosRecv(int fd, void* buf, size_t n, int flags) {
  ChaosInjector* injector = Installed().load(MemOrder::kAcquire);
  if (injector == nullptr) return ::recv(fd, buf, n, flags);
  return injector->Recv(fd, buf, n, flags);
}

ssize_t ChaosSend(int fd, const void* buf, size_t n, int flags) {
  ChaosInjector* injector = Installed().load(MemOrder::kAcquire);
  if (injector == nullptr) return ::send(fd, buf, n, flags);
  return injector->Send(fd, buf, n, flags);
}

void ChaosOnClose(int fd) {
  ChaosInjector* injector = Installed().load(MemOrder::kAcquire);
  if (injector != nullptr) injector->OnClose(fd);
}

uint64_t ChaosSeedFromEnv(uint64_t fallback) {
  const char* text = std::getenv("SKETCHSAMPLE_CHAOS_SEED");
  if (text == nullptr || *text == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == nullptr || *end != '\0') return fallback;
  return static_cast<uint64_t>(value);
}

}  // namespace sketchsample
