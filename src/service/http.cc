#include "src/service/http.h"

#include <algorithm>
#include <cctype>
#include <cstdint>

#include "src/util/metrics.h"

namespace sketchsample {

namespace {

// RFC 7230 token characters (header names, methods).
bool IsTokenChar(char c) {
  if (std::isalnum(static_cast<unsigned char>(c)) != 0) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool IsToken(const std::string& s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), IsTokenChar);
}

std::string ToLower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

std::string TrimOws(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t')) ++begin;
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t')) --end;
  return s.substr(begin, end - begin);
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// A connection-level hard cap: even a client that never completes a message
// cannot buffer more than one maximal head + one maximal body + slack.
size_t HardBufferCap(const HttpLimits& limits) {
  return limits.max_header_bytes + limits.max_body_bytes + 4096;
}

}  // namespace

bool PercentDecode(const std::string& text, std::string* out) {
  out->clear();
  out->reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '%') {
      if (i + 2 >= text.size()) return false;
      const int hi = HexDigit(text[i + 1]);
      const int lo = HexDigit(text[i + 2]);
      if (hi < 0 || lo < 0) return false;
      c = static_cast<char>(hi * 16 + lo);
      i += 2;
    }
    // No NUL or control bytes survive decoding — decoded strings flow into
    // logs and error messages.
    const unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x20 || u == 0x7f) return false;
    out->push_back(c);
  }
  return true;
}

const std::string* HttpRequest::QueryParam(const std::string& key) const {
  for (const auto& [k, v] : query) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool HttpRequestParser::Fail(int status, const std::string& message) {
  error_status_ = status;
  error_message_ = message;
  buffer_.clear();
  buffer_.shrink_to_fit();
  SKETCHSAMPLE_METRIC_INC("service.http.parse_errors");
  return false;
}

bool HttpRequestParser::Feed(const char* data, size_t n) {
  if (error()) return false;
  if (buffer_.size() + n > HardBufferCap(limits_)) {
    return Fail(400, "request stream exceeds connection buffer cap");
  }
  buffer_.append(data, n);
  return true;
}

bool HttpRequestParser::ParseRequestLine(const std::string& line,
                                         HttpRequest* out) {
  if (line.size() > limits_.max_request_line) {
    return Fail(414, "request line too long");
  }
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return Fail(400, "malformed request line");
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || line.find(' ', sp2 + 1) != std::string::npos) {
    return Fail(400, "malformed request line");
  }
  out->method = line.substr(0, sp1);
  if (!IsToken(out->method) || out->method.size() > 16) {
    return Fail(400, "invalid request method");
  }
  const std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);
  if (version == "HTTP/1.1") {
    out->version_minor = 1;
  } else if (version == "HTTP/1.0") {
    out->version_minor = 0;
  } else if (version.rfind("HTTP/", 0) == 0) {
    return Fail(505, "unsupported HTTP version");
  } else {
    return Fail(400, "malformed HTTP version");
  }
  if (target.empty() || target[0] != '/') {
    return Fail(400, "request target must be origin-form");
  }
  for (char c : target) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (u <= 0x20 || u >= 0x7f) return Fail(400, "invalid byte in target");
  }
  const size_t qmark = target.find('?');
  const std::string raw_path = target.substr(0, qmark);
  if (!PercentDecode(raw_path, &out->path)) {
    return Fail(400, "malformed percent-encoding in path");
  }
  out->query.clear();
  if (qmark != std::string::npos) {
    const std::string raw_query = target.substr(qmark + 1);
    size_t start = 0;
    while (start <= raw_query.size()) {
      size_t amp = raw_query.find('&', start);
      if (amp == std::string::npos) amp = raw_query.size();
      const std::string pair = raw_query.substr(start, amp - start);
      if (!pair.empty()) {
        const size_t eq = pair.find('=');
        std::string key;
        std::string value;
        const std::string raw_key =
            eq == std::string::npos ? pair : pair.substr(0, eq);
        const std::string raw_value =
            eq == std::string::npos ? std::string() : pair.substr(eq + 1);
        if (!PercentDecode(raw_key, &key) ||
            !PercentDecode(raw_value, &value)) {
          return Fail(400, "malformed percent-encoding in query");
        }
        out->query.emplace_back(std::move(key), std::move(value));
      }
      if (amp == raw_query.size()) break;
      start = amp + 1;
    }
  }
  return true;
}

bool HttpRequestParser::ParseHeaderLine(const std::string& line,
                                        HttpRequest* out) {
  if (out->headers.size() >= limits_.max_headers) {
    return Fail(431, "too many request headers");
  }
  const size_t colon = line.find(':');
  if (colon == std::string::npos || colon == 0) {
    return Fail(400, "malformed header line");
  }
  const std::string name = line.substr(0, colon);
  if (!IsToken(name)) {
    // Also rejects whitespace before the colon (request smuggling vector).
    return Fail(400, "invalid header name");
  }
  const std::string value = TrimOws(line.substr(colon + 1));
  for (char c : value) {
    const unsigned char u = static_cast<unsigned char>(c);
    if ((u < 0x20 && c != '\t') || u == 0x7f) {
      return Fail(400, "invalid byte in header value");
    }
  }
  const std::string lower = ToLower(name);
  auto [it, inserted] = out->headers.emplace(lower, value);
  if (!inserted) {
    // Duplicate Content-Length with differing values is the classic
    // smuggling trick; duplicates of anything else keep the first value.
    if (lower == "content-length" && it->second != value) {
      return Fail(400, "conflicting Content-Length headers");
    }
  }
  return true;
}

bool HttpRequestParser::Next(HttpRequest* out) {
  if (error()) return false;
  const size_t head_end = buffer_.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    if (buffer_.size() > limits_.max_header_bytes) {
      Fail(431, "request head exceeds size limit");
    } else if (buffer_.find('\0') != std::string::npos) {
      Fail(400, "NUL byte in request head");
    }
    return false;
  }
  if (head_end > limits_.max_header_bytes) {
    Fail(431, "request head exceeds size limit");
    return false;
  }
  const std::string head = buffer_.substr(0, head_end);
  if (head.find('\0') != std::string::npos) {
    Fail(400, "NUL byte in request head");
    return false;
  }

  HttpRequest request;
  size_t line_start = 0;
  bool first = true;
  while (line_start <= head.size()) {
    size_t line_end = head.find("\r\n", line_start);
    if (line_end == std::string::npos) line_end = head.size();
    const std::string line = head.substr(line_start, line_end - line_start);
    if (first) {
      if (!ParseRequestLine(line, &request)) return false;
      first = false;
    } else {
      if (line.empty() || line.find('\n') != std::string::npos) {
        // A bare LF inside the head means the client used non-CRLF line
        // endings; treat as malformed rather than guessing boundaries.
        Fail(400, "malformed header line ending");
        return false;
      }
      if (!ParseHeaderLine(line, &request)) return false;
    }
    if (line_end == head.size()) break;
    line_start = line_end + 2;
  }

  if (request.headers.count("transfer-encoding") != 0) {
    Fail(501, "Transfer-Encoding is not supported");
    return false;
  }
  uint64_t content_length = 0;
  if (auto it = request.headers.find("content-length");
      it != request.headers.end()) {
    const std::string& text = it->second;
    if (text.empty() || text.size() > 19 ||
        !std::all_of(text.begin(), text.end(), [](char c) {
          return c >= '0' && c <= '9';
        })) {
      Fail(400, "malformed Content-Length");
      return false;
    }
    content_length = std::stoull(text);
    if (content_length > limits_.max_body_bytes) {
      Fail(413, "request body exceeds size limit");
      return false;
    }
  }

  const size_t body_start = head_end + 4;
  if (buffer_.size() - body_start < content_length) {
    return false;  // body still in flight; keep everything buffered
  }
  request.body = buffer_.substr(body_start, static_cast<size_t>(content_length));
  buffer_.erase(0, body_start + static_cast<size_t>(content_length));

  const auto connection = request.headers.find("connection");
  const std::string connection_value =
      connection != request.headers.end() ? ToLower(connection->second)
                                          : std::string();
  if (request.version_minor == 0) {
    request.keep_alive = connection_value.find("keep-alive") != std::string::npos;
  } else {
    request.keep_alive = connection_value.find("close") == std::string::npos;
  }
  *out = std::move(request);
  SKETCHSAMPLE_METRIC_INC("service.http.requests_parsed");
  return true;
}

const char* HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 414: return "URI Too Long";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string HttpResponse::Serialize() const {
  std::string out;
  out.reserve(128 + body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += HttpStatusText(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  if (retry_after_s > 0) {
    out += "\r\nRetry-After: ";
    out += std::to_string(retry_after_s);
  }
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n\r\n";
  out += body;
  return out;
}

HttpResponse JsonResponse(int status, const JsonValue& body) {
  HttpResponse response;
  response.status = status;
  response.body = body.Dump();
  response.body += '\n';
  return response;
}

HttpResponse ErrorResponse(int status, const std::string& message) {
  JsonValue body = JsonValue::Object();
  body.Set("error", JsonValue::String(message));
  return JsonResponse(status, body);
}

}  // namespace sketchsample
