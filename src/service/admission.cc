#include "src/service/admission.h"

#include <algorithm>
#include <cmath>

#include "src/util/rng.h"

namespace sketchsample {

namespace {

// 53-bit uniform in [0, 1) from a mixed draw, matching Xoshiro256's
// NextDouble() so the admission draw has the same resolution as the shed
// sampler's.
double ToUnit(uint64_t mixed) {
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

}  // namespace

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options), admit_rate_(options.initial_admit) {
  if (options_.capacity == 0) options_.capacity = 1;
  if (options_.window_requests == 0) options_.window_requests = 1;
  options_.min_admit = std::clamp(options_.min_admit, 0.0, 1.0);
  options_.max_admit = std::clamp(options_.max_admit, options_.min_admit, 1.0);
  admit_rate_ = std::clamp(admit_rate_, options_.min_admit, options_.max_admit);
  hard_limit_ =
      options_.hard_limit > 0 ? options_.hard_limit : 2 * options_.capacity;
  hard_limit_ = std::max(hard_limit_, options_.capacity);
}

int AdmissionController::RetryAfterSeconds() const {
  const int cap = std::max(1, options_.retry_after_max_s);
  const double severity = 1.0 - admit_rate_;
  const int hint = static_cast<int>(std::ceil(severity * cap));
  return std::clamp(hint, 1, cap);
}

AdmissionController::Decision AdmissionController::Admit() {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t arrival = offered_++;
  ++window_offered_;
  window_peak_inflight_ = std::max(window_peak_inflight_, inflight_);

  Decision decision;
  if (inflight_ >= hard_limit_) {
    ++rejected_;
    decision.admitted = false;
    decision.status = 503;
    decision.retry_after_s = RetryAfterSeconds();
  } else if (ToUnit(MixSeed(options_.seed, arrival)) >= admit_rate_) {
    ++shed_;
    decision.admitted = false;
    decision.status = 429;
    decision.retry_after_s = RetryAfterSeconds();
  } else {
    ++admitted_;
    ++inflight_;
    window_peak_inflight_ = std::max(window_peak_inflight_, inflight_);
  }
  if (window_offered_ >= options_.window_requests) CloseWindow();
  return decision;
}

void AdmissionController::CloseWindow() {
  const double capacity = static_cast<double>(options_.capacity);
  const double peak = static_cast<double>(window_peak_inflight_);
  if (peak > capacity) {
    // Proportional clamp down: the next window's expected peak lands on the
    // budget (the ShedController's p ← p · target/kept step, with inflight
    // depth as the kept signal).
    admit_rate_ = std::clamp(admit_rate_ * capacity / peak,
                             options_.min_admit, options_.max_admit);
  } else if (peak < options_.headroom * capacity) {
    // Additive probe up under headroom.
    admit_rate_ =
        std::min(options_.max_admit, admit_rate_ + options_.increase_step);
  }
  ++windows_;
  window_offered_ = 0;
  window_peak_inflight_ = inflight_;
}

void AdmissionController::OnDone() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (inflight_ > 0) --inflight_;
}

bool AdmissionController::saturated() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return admit_rate_ < options_.max_admit || inflight_ >= options_.capacity;
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.offered = offered_;
  stats.admitted = admitted_;
  stats.shed = shed_;
  stats.rejected = rejected_;
  stats.windows = windows_;
  stats.admit_rate = admit_rate_;
  stats.inflight = inflight_;
  return stats;
}

}  // namespace sketchsample
