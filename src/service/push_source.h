// Blocking in-memory stream source fed by the service's /ingest endpoint
// (or the serve CLI's file feeder). The ingest engine pulls NextChunk on
// its router thread; producers push batches from HTTP connection threads.
//
// Unlike the polling sources in src/stream/source.h, NextChunk blocks while
// the queue is empty and the stream is still open, so the engine never
// burns its stall budget waiting for a quiet client — a zero-length pull
// means the stream is truly closed and drained. Backpressure is the bounded
// queue: Push blocks once max_buffered tuples are in flight, which
// propagates ingest overload to HTTP clients as slow POSTs rather than
// unbounded memory growth.
#ifndef SKETCHSAMPLE_SERVICE_PUSH_SOURCE_H_
#define SKETCHSAMPLE_SERVICE_PUSH_SOURCE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "src/stream/source.h"

namespace sketchsample {

class PushSource final : public StreamSource {
 public:
  explicit PushSource(size_t max_buffered = 1u << 20);

  /// Enqueues `n` tuples in order; blocks while the queue is full. Returns
  /// the number accepted — short only when the stream was closed while
  /// waiting (late producers must not reorder past end-of-stream).
  size_t Push(const uint64_t* values, size_t n);

  /// Marks end-of-stream: queued tuples still drain, then NextChunk
  /// returns 0 for good. Idempotent.
  void Close();

  bool closed() const;
  /// Tuples accepted by Push so far (including not-yet-consumed ones).
  uint64_t pushed() const;

  std::optional<uint64_t> Next() override;
  size_t NextChunk(uint64_t* out, size_t max_n) override;
  /// Never stalls: NextChunk blocks instead of returning transient zeros.
  bool Stalled() const override { return false; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<uint64_t> queue_;
  size_t max_buffered_;
  uint64_t pushed_ = 0;
  bool closed_ = false;
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SERVICE_PUSH_SOURCE_H_
