#include "src/service/service.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "src/core/confidence.h"
#include "src/data/frequency_vector.h"
#include "src/service/admission.h"
#include "src/util/metrics.h"

namespace sketchsample {

namespace {

// Four moments, resolved: exact when the operator supplied them, otherwise
// a plug-in extrapolation from what the service can observe.
struct Moments4 {
  double m1 = 0, m2 = 0, m3 = 0, m4 = 0;
  bool exact = false;
};

// Plug-in f-moments at query time: m1 = position (the pre-shed count is
// known exactly — every tuple passes the router), m2 = the corrected
// self-join estimate clamped to >= m1 (F2 >= F1 holds for any integer
// frequency vector), and m3/m4 by the power-mean extrapolation that takes
// the Cauchy–Schwarz lower bounds F3 >= F2²/F1 and F4 >= F3²/F2 with
// equality. Exactly right for uniform frequencies, a documented
// approximation otherwise (docs/SERVICE.md#confidence-intervals).
Moments4 ResolveMoments(const std::optional<StreamMoments>& exact,
                        double count, double square_estimate) {
  if (exact.has_value()) {
    return {exact->m1, exact->m2, exact->m3, exact->m4, true};
  }
  Moments4 m;
  m.m1 = std::max(count, 0.0);
  if (m.m1 <= 0.0) return m;
  m.m2 = std::max(square_estimate, m.m1);
  m.m3 = m.m2 * m.m2 / m.m1;
  m.m4 = m.m2 > 0.0 ? m.m3 * m.m3 / m.m2 : 0.0;
  return m;
}

void SetCommonFields(JsonValue& body, const char* endpoint,
                     const ServiceSnapshot& snapshot,
                     const QueryFreshness& fresh) {
  body.Set("endpoint", JsonValue::String(endpoint));
  body.Set("position", JsonValue::Number(static_cast<double>(snapshot.position)));
  body.Set("kept", JsonValue::Number(static_cast<double>(snapshot.kept)));
  body.Set("sequence", JsonValue::Number(static_cast<double>(snapshot.sequence)));
  body.Set("p", JsonValue::Number(snapshot.p));
  body.Set("realized_p", JsonValue::Number(snapshot.realized_p()));
  // Degraded-mode stamping: how far the snapshot trails ingest, and whether
  // the answer was served under stale/shed conditions. Same code path
  // online and offline, so byte-identity is preserved (both compute 0 /
  // false at a sealed final state).
  body.Set("staleness", JsonValue::Number(static_cast<double>(
                            SnapshotStaleness(snapshot, fresh))));
  body.Set("degraded", JsonValue::Bool(DegradedAnswer(snapshot, fresh)));
}

void SetInterval(JsonValue& body, const ConfidenceInterval& ci) {
  JsonValue interval = JsonValue::Object();
  interval.Set("low", JsonValue::Number(ci.low));
  interval.Set("high", JsonValue::Number(ci.high));
  interval.Set("level", JsonValue::Number(ci.level));
  body.Set("ci", std::move(interval));
}

}  // namespace

bool ParseUint64(const std::string& text, uint64_t* out) {
  if (text.empty() || text.size() > 20) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

JsonValue SelfJoinResponseJson(const ServiceSnapshot& snapshot,
                               const std::optional<StreamMoments>& moments_f,
                               double level, const QueryFreshness& fresh) {
  const double raw = snapshot.sketch.EstimateSelfJoin();
  const double p = snapshot.realized_p();
  const double estimate =
      p > 0.0 ? RealizedSelfJoinEstimate(raw, p, snapshot.kept) : 0.0;
  const Moments4 f = ResolveMoments(
      moments_f, static_cast<double>(snapshot.position), estimate);
  JoinStatistics stats;
  stats.f1 = f.m1;
  stats.f2 = f.m2;
  stats.f3 = f.m3;
  stats.f4 = f.m4;
  const ConfidenceInterval ci =
      p > 0.0 ? RealizedSelfJoinInterval(estimate, stats, p,
                                         snapshot.sketch.buckets(), level)
              : ConfidenceInterval{0.0, 0.0, level};
  JsonValue body = JsonValue::Object();
  SetCommonFields(body, "selfjoin", snapshot, fresh);
  body.Set("estimate", JsonValue::Number(estimate));
  body.Set("raw", JsonValue::Number(raw));
  SetInterval(body, ci);
  body.Set("n", JsonValue::Number(static_cast<double>(snapshot.sketch.buckets())));
  body.Set("moments", JsonValue::String(f.exact ? "exact" : "plugin"));
  return body;
}

JsonValue JoinResponseJson(const ServiceSnapshot& snapshot,
                           const FagmsSketch& reference,
                           const std::optional<StreamMoments>& moments_f,
                           const std::optional<StreamMoments>& moments_g,
                           double level, const QueryFreshness& fresh) {
  const double raw = snapshot.sketch.EstimateJoin(reference);
  const double p = snapshot.realized_p();
  // The reference sketch summarizes an unsampled relation: q̂ = 1.
  const double estimate = p > 0.0 ? RealizedJoinEstimate(raw, p, 1.0) : 0.0;
  const double self_raw = snapshot.sketch.EstimateSelfJoin();
  const double f2_estimate =
      p > 0.0 ? RealizedSelfJoinEstimate(self_raw, p, snapshot.kept) : 0.0;
  const Moments4 f = ResolveMoments(
      moments_f, static_cast<double>(snapshot.position), f2_estimate);
  // g-side plug-in: only g2 is observable from the reference sketch. g1 =
  // sqrt(g2) is its Cauchy–Schwarz lower bound; higher moments extrapolate
  // as for f.
  Moments4 g;
  if (moments_g.has_value()) {
    g = {moments_g->m1, moments_g->m2, moments_g->m3, moments_g->m4, true};
  } else {
    g.m2 = std::max(reference.EstimateSelfJoin(), 0.0);
    g.m1 = std::sqrt(g.m2);
    g.m3 = g.m1 > 0.0 ? g.m2 * g.m2 / g.m1 : 0.0;
    g.m4 = g.m2 > 0.0 ? g.m3 * g.m3 / g.m2 : 0.0;
  }
  JoinStatistics stats;
  stats.f1 = f.m1;
  stats.f2 = f.m2;
  stats.f3 = f.m3;
  stats.f4 = f.m4;
  stats.g1 = g.m1;
  stats.g2 = g.m2;
  stats.g3 = g.m3;
  stats.g4 = g.m4;
  // Cross moments are never observable from the sketches alone; plug in
  // the join estimate itself and scale by mean frequencies.
  const double fg = std::max(estimate, 0.0);
  stats.fg = fg;
  stats.fg2 = g.m1 > 0.0 ? fg * (g.m2 / g.m1) : 0.0;
  stats.f2g = f.m1 > 0.0 ? fg * (f.m2 / f.m1) : 0.0;
  stats.f2g2 = (f.m1 > 0.0 && g.m1 > 0.0)
                   ? fg * (f.m2 / f.m1) * (g.m2 / g.m1)
                   : 0.0;
  const ConfidenceInterval ci =
      p > 0.0 ? RealizedJoinInterval(estimate, stats, p, 1.0,
                                     snapshot.sketch.buckets(), level)
              : ConfidenceInterval{0.0, 0.0, level};
  JsonValue body = JsonValue::Object();
  SetCommonFields(body, "join", snapshot, fresh);
  body.Set("estimate", JsonValue::Number(estimate));
  body.Set("raw", JsonValue::Number(raw));
  SetInterval(body, ci);
  body.Set("n", JsonValue::Number(static_cast<double>(snapshot.sketch.buckets())));
  body.Set("moments",
           JsonValue::String(f.exact && g.exact ? "exact" : "plugin"));
  return body;
}

JsonValue PointResponseJson(const ServiceSnapshot& snapshot, uint64_t key,
                            const std::optional<StreamMoments>& moments_f,
                            double level, const QueryFreshness& fresh) {
  const double raw = snapshot.sketch.EstimateFrequency(key);
  const double p = snapshot.realized_p();
  const double estimate = p > 0.0 ? RealizedJoinEstimate(raw, p, 1.0) : 0.0;
  const double self_raw = snapshot.sketch.EstimateSelfJoin();
  const double f2_estimate =
      p > 0.0 ? RealizedSelfJoinEstimate(self_raw, p, snapshot.kept) : 0.0;
  const Moments4 f = ResolveMoments(
      moments_f, static_cast<double>(snapshot.position), f2_estimate);
  // A point query is a size-of-join against the singleton relation {key}:
  // g1 = g2 = g3 = g4 = 1 exactly (Prop 13 with q = 1).
  JoinStatistics stats;
  stats.f1 = f.m1;
  stats.f2 = f.m2;
  stats.f3 = f.m3;
  stats.f4 = f.m4;
  stats.g1 = stats.g2 = stats.g3 = stats.g4 = 1.0;
  const double fg = std::max(estimate, 0.0);
  stats.fg = fg;
  stats.fg2 = fg;
  stats.f2g = f.m1 > 0.0 ? fg * (f.m2 / f.m1) : 0.0;
  stats.f2g2 = stats.f2g;
  const ConfidenceInterval ci =
      p > 0.0 ? RealizedJoinInterval(estimate, stats, p, 1.0,
                                     snapshot.sketch.buckets(), level)
              : ConfidenceInterval{0.0, 0.0, level};
  JsonValue body = JsonValue::Object();
  SetCommonFields(body, "point", snapshot, fresh);
  body.Set("key", JsonValue::Number(static_cast<double>(key)));
  body.Set("estimate", JsonValue::Number(estimate));
  body.Set("raw", JsonValue::Number(raw));
  SetInterval(body, ci);
  body.Set("n", JsonValue::Number(static_cast<double>(snapshot.sketch.buckets())));
  body.Set("moments", JsonValue::String(f.exact ? "exact" : "plugin"));
  return body;
}

JsonValue DistinctResponseJson(const ServiceSnapshot& snapshot, double level,
                               const QueryFreshness& fresh) {
  const KmvSketch& kmv = *snapshot.distinct;
  const double estimate = kmv.EstimateDistinct();
  // While fewer than k distinct hashes are retained the count is exact;
  // saturated, the (k−1)/u estimator has relative standard error
  // ~1/sqrt(k−2), so Var ≈ estimate²/(k−2).
  ConfidenceInterval ci{estimate, estimate, level};
  if (kmv.retained() >= kmv.k() && kmv.k() > 2) {
    const double variance =
        estimate * estimate / static_cast<double>(kmv.k() - 2);
    ci = CltInterval(estimate, variance, level);
  }
  JsonValue body = JsonValue::Object();
  SetCommonFields(body, "distinct", snapshot, fresh);
  body.Set("estimate", JsonValue::Number(estimate));
  SetInterval(body, ci);
  body.Set("k", JsonValue::Number(static_cast<double>(kmv.k())));
  body.Set("retained", JsonValue::Number(static_cast<double>(kmv.retained())));
  // The counter sees the post-shed stream: this is the distinct count of
  // the *sampled* prefix, not an F0 estimate of the raw stream.
  body.Set("scope", JsonValue::String("sampled_stream"));
  return body;
}

JsonValue QuantileResponseJson(const ServiceSnapshot& snapshot, double q,
                               double level, const QueryFreshness& fresh) {
  const KllSketch& kll = *snapshot.quantile;
  JsonValue body = JsonValue::Object();
  SetCommonFields(body, "quantile", snapshot, fresh);
  body.Set("q", JsonValue::Number(q));
  double estimate = 0.0;
  double eps_sketch = 0.0;
  double eps_sampling = 0.0;
  ConfidenceInterval ci{0.0, 0.0, level};
  if (kll.n() > 0) {
    // Two rank-error sources stack: the KLL compaction error (variance
    // accumulated per compaction, src/sketch/kll.h) and the Bernoulli
    // shedding upstream of the sketch — the kept stream's q-quantile
    // estimates the full stream's with CLT rank noise
    // sqrt(q(1−q)(1−p̂)/(p̂·N)) at realized rate p̂ over N positions.
    const double z = NormalQuantile(0.5 * (1.0 + level));
    eps_sketch = z * kll.RankErrorStddev();
    const double p = snapshot.realized_p();
    if (p > 0.0 && p < 1.0 && snapshot.position > 0) {
      eps_sampling =
          z * std::sqrt(q * (1.0 - q) * (1.0 - p) /
                        (p * static_cast<double>(snapshot.position)));
    }
    const double eps_total = eps_sketch + eps_sampling;
    estimate = static_cast<double>(kll.EstimateQuantile(q));
    // Value-space interval: re-query the sketch at the rank bounds.
    ci.low = static_cast<double>(
        kll.EstimateQuantile(std::max(0.0, q - eps_total)));
    ci.high = static_cast<double>(
        kll.EstimateQuantile(std::min(1.0, q + eps_total)));
  }
  body.Set("estimate", JsonValue::Number(estimate));
  JsonValue rank_error = JsonValue::Object();
  rank_error.Set("sketch", JsonValue::Number(eps_sketch));
  rank_error.Set("sampling", JsonValue::Number(eps_sampling));
  rank_error.Set("total", JsonValue::Number(eps_sketch + eps_sampling));
  body.Set("rank_error", std::move(rank_error));
  SetInterval(body, ci);
  body.Set("k", JsonValue::Number(static_cast<double>(kll.k())));
  body.Set("retained", JsonValue::Number(static_cast<double>(kll.retained())));
  body.Set("compactions",
           JsonValue::Number(static_cast<double>(kll.compactions())));
  // Unlike /query/distinct, this answers about the *pre-shed* stream:
  // positional shedding preserves ranks in expectation, and the sampling
  // term above accounts for the residual rank noise.
  body.Set("scope", JsonValue::String("stream"));
  return body;
}

JsonValue SubpopResponseJson(const ServiceSnapshot& snapshot,
                             const SubpopPredicate& pred, double level,
                             const QueryFreshness& fresh) {
  const KeyedKmvSketch& kmv = *snapshot.subpop;
  JsonValue body = JsonValue::Object();
  SetCommonFields(body, "subpop", snapshot, fresh);
  body.Set("filter", JsonValue::String(pred.ToString()));
  const double p = snapshot.realized_p();
  SubpopEstimate est;
  if (snapshot.kept > 0 && p > 0.0) {
    est = EstimateSubpopulation(kmv, pred, p);
  } else {
    est.exact = true;  // empty sketch: the weight is exactly zero
  }
  body.Set("estimate", JsonValue::Number(est.estimate));
  body.Set("kept_estimate", JsonValue::Number(est.kept_estimate));
  JsonValue variance = JsonValue::Object();
  variance.Set("sketch", JsonValue::Number(est.sketch_variance));
  variance.Set("sampling", JsonValue::Number(est.sampling_variance));
  variance.Set("total", JsonValue::Number(est.variance));
  body.Set("variance", std::move(variance));
  SetInterval(body, SubpopInterval(est, level));
  body.Set("matched", JsonValue::Number(static_cast<double>(est.matched)));
  body.Set("sample_size",
           JsonValue::Number(static_cast<double>(est.sample_size)));
  body.Set("exact", JsonValue::Bool(est.exact));
  body.Set("k", JsonValue::Number(static_cast<double>(kmv.k())));
  body.Set("retained", JsonValue::Number(static_cast<double>(kmv.retained())));
  body.Set("scope", JsonValue::String("stream"));
  return body;
}

// ---------------------------------------------------------------------------
// SketchService
// ---------------------------------------------------------------------------

enum class SketchService::Endpoint {
  kSelfJoin,
  kJoin,
  kPoint,
  kDistinct,
  kQuantile,
  kSubpop,
  kStats,
  kIngest,
  kIngestClose,
  kHealth,
};

class SketchService::Handler final : public HttpHandler {
 public:
  Handler(SketchService* service, Endpoint endpoint)
      : service_(service), endpoint_(endpoint) {}
  HttpResponse Handle(const HttpRequest& request,
                      const RequestContext& context) override {
    return service_->Handle(endpoint_, request, context);
  }

 private:
  SketchService* service_;
  Endpoint endpoint_;
};

class SketchService::Publisher final : public ShardSnapshotHook<FagmsSketch> {
 public:
  explicit Publisher(RcuCell<ServiceSnapshot>* registry)
      : registry_(registry) {}
  void Publish(ShardEngineSnapshot<FagmsSketch> snapshot) override {
    auto view = std::make_unique<ServiceSnapshot>(ServiceSnapshot{
        std::move(snapshot.sketch), std::move(snapshot.distinct),
        std::move(snapshot.quantile), std::move(snapshot.subpop),
        snapshot.position, snapshot.kept, snapshot.sequence, snapshot.p});
    registry_->Publish(std::move(view));
    SKETCHSAMPLE_METRIC_INC("service.snapshots.published");
  }

 private:
  RcuCell<ServiceSnapshot>* registry_;
};

SketchService::SketchService(const SketchServiceOptions& options)
    : options_(options),
      proto_(options.sketch),
      registry_(options.max_readers == 0 ? 1 : options.max_readers),
      source_(options.push_buffer) {
  if (!(options_.default_level > 0.0 && options_.default_level < 1.0)) {
    throw std::invalid_argument("service default_level must be in (0, 1)");
  }
  if (!options_.join_sketch.empty()) {
    reference_.emplace(DeserializeFagms(options_.join_sketch));
    if (!proto_.CompatibleWith(*reference_)) {
      throw std::invalid_argument(
          "join reference sketch incompatible with the service sketch "
          "configuration (shape/scheme/seed must match)");
    }
  }
  publisher_ = std::make_unique<Publisher>(&registry_);
  engine_ = std::make_unique<ShardEngine<FagmsSketch>>(proto_, options_.engine);
  engine_->SetSnapshotHook(publisher_.get(), options_.snapshot_every);
  PublishEngineState();
}

SketchService::~SketchService() { Stop(); }

void SketchService::PublishEngineState() {
  auto view = std::make_unique<ServiceSnapshot>(ServiceSnapshot{
      engine_->merged(), engine_->distinct(), engine_->quantile(),
      engine_->subpop(), engine_->total_seen(), engine_->total_kept(), 0,
      engine_->p()});
  registry_.Publish(std::move(view));
}

void SketchService::Register(Router& router) {
  const auto add = [&](const char* method, const char* path,
                       Endpoint endpoint) {
    handlers_.push_back(std::make_unique<Handler>(this, endpoint));
    router.Add(method, path, handlers_.back().get());
  };
  add("GET", "/query/selfjoin", Endpoint::kSelfJoin);
  add("GET", "/query/join", Endpoint::kJoin);
  add("GET", "/query/point", Endpoint::kPoint);
  add("GET", "/query/distinct", Endpoint::kDistinct);
  add("GET", "/query/quantile", Endpoint::kQuantile);
  add("GET", "/query/subpop", Endpoint::kSubpop);
  add("GET", "/stats", Endpoint::kStats);
  add("GET", "/healthz", Endpoint::kHealth);
  add("POST", "/ingest", Endpoint::kIngest);
  add("POST", "/ingest/close", Endpoint::kIngestClose);
}

void SketchService::Start() {
  if (started_) return;
  started_ = true;
  ingest_thread_ = std::thread([this] { IngestMain(); });
}

void SketchService::IngestMain() {
  try {
    if (!options_.resume.empty()) {
      const PipelineCheckpoint cp = DeserializeCheckpoint(options_.resume);
      // Blocks until the producer has re-pushed the checkpointed prefix
      // (the positional sampler makes the fast-forward bit-exact).
      engine_->Restore(cp, source_);
      PublishEngineState();
    }
    engine_->Run(source_);
  } catch (const std::exception& error) {
    std::lock_guard<std::mutex> lock(error_mutex_);
    ingest_error_ = error.what();
    SKETCHSAMPLE_METRIC_INC("service.ingest.errors");
  }
  ingest_done_.store(true, MemOrder::kRelease);
}

void SketchService::Stop() {
  if (!started_) return;
  CloseIngest();
  if (ingest_thread_.joinable()) ingest_thread_.join();
  started_ = false;
}

size_t SketchService::Push(const uint64_t* values, size_t n) {
  return source_.Push(values, n);
}

void SketchService::CloseIngest() { source_.Close(); }

std::string SketchService::ingest_error() const {
  std::lock_guard<std::mutex> lock(error_mutex_);
  return ingest_error_;
}

HttpResponse SketchService::HandleIngest(const HttpRequest& request) {
  if (source_.closed()) {
    return ErrorResponse(409, "ingest is closed");
  }
  // Sequenced chunk? X-Ingest-Session names a retry stream, X-Ingest-Seq
  // numbers its chunks from 0. A replayed chunk (seq < next) is acked as a
  // duplicate without re-pushing — that is what makes client retries of
  // ingest exactly-once. A gap (seq > next) is a client bug: 409.
  bool sequenced = false;
  uint64_t session = 0;
  uint64_t seq = 0;
  if (const auto it = request.headers.find("x-ingest-session");
      it != request.headers.end()) {
    if (!ParseUint64(it->second, &session)) {
      return ErrorResponse(400, "malformed X-Ingest-Session");
    }
    const auto seq_it = request.headers.find("x-ingest-seq");
    if (seq_it == request.headers.end() ||
        !ParseUint64(seq_it->second, &seq)) {
      return ErrorResponse(400,
                           "X-Ingest-Session requires a decimal X-Ingest-Seq");
    }
    sequenced = true;
  }
  // Body: whitespace-separated decimal tuples. Parsed strictly and fully
  // before anything is pushed — a malformed batch must not half-ingest.
  std::vector<uint64_t> values;
  values.reserve(256);
  const std::string& body = request.body;
  size_t i = 0;
  while (i < body.size()) {
    while (i < body.size() &&
           (body[i] == ' ' || body[i] == '\n' || body[i] == '\t' ||
            body[i] == '\r')) {
      ++i;
    }
    if (i >= body.size()) break;
    const size_t start = i;
    while (i < body.size() && body[i] >= '0' && body[i] <= '9') ++i;
    uint64_t value = 0;
    if (i == start || !ParseUint64(body.substr(start, i - start), &value)) {
      return ErrorResponse(400, "malformed tuple at byte offset " +
                                    std::to_string(start));
    }
    if (i < body.size() && body[i] != ' ' && body[i] != '\n' &&
        body[i] != '\t' && body[i] != '\r') {
      return ErrorResponse(400, "malformed tuple at byte offset " +
                                    std::to_string(start));
    }
    values.push_back(value);
  }

  // The mutex spans the dedup check AND the push for sequenced chunks, so a
  // session's chunks enter the stream in order exactly once even when the
  // client retries concurrently. Sequenced ingest is therefore serialized;
  // unsequenced posts keep the lock-free path.
  std::unique_lock<std::mutex> dedup_lock;
  if (sequenced) {
    dedup_lock = std::unique_lock<std::mutex>(ingest_mutex_);
    auto it = ingest_next_seq_.find(session);
    if (it == ingest_next_seq_.end()) {
      if (ingest_next_seq_.size() >= 1024) {
        return ErrorResponse(503, "too many ingest sessions");
      }
      it = ingest_next_seq_.emplace(session, 0).first;
    }
    if (seq < it->second) {
      ingest_duplicates_.fetch_add(1, MemOrder::kRelaxed);
      SKETCHSAMPLE_METRIC_INC("service.ingest.duplicates");
      JsonValue response = JsonValue::Object();
      response.Set("accepted", JsonValue::Number(0.0));
      response.Set("pushed", JsonValue::Number(static_cast<double>(pushed())));
      response.Set("duplicate", JsonValue::Bool(true));
      return JsonResponse(200, response);
    }
    if (seq > it->second) {
      return ErrorResponse(
          409, "ingest sequence gap: expected " + std::to_string(it->second) +
                   ", got " + std::to_string(seq));
    }
  }
  const size_t accepted = Push(values.data(), values.size());
  JsonValue response = JsonValue::Object();
  response.Set("accepted", JsonValue::Number(static_cast<double>(accepted)));
  response.Set("pushed", JsonValue::Number(static_cast<double>(pushed())));
  if (accepted < values.size()) {
    response.Set("error", JsonValue::String("ingest closed mid-batch"));
    return JsonResponse(409, response);
  }
  // Advance only on a fully-applied chunk, so a failed push is retryable
  // under the same sequence number.
  if (sequenced) ++ingest_next_seq_[session];
  return JsonResponse(200, response);
}

HttpResponse SketchService::HandleStats(const RequestContext& context) {
  JsonValue body = JsonValue::Object();
  body.Set("pushed", JsonValue::Number(static_cast<double>(pushed())));
  body.Set("ingest_open", JsonValue::Bool(!source_.closed()));
  body.Set("ingest_done", JsonValue::Bool(ingest_done()));
  const std::string error = ingest_error();
  if (!error.empty()) body.Set("ingest_error", JsonValue::String(error));
  body.Set("snapshots_published",
           JsonValue::Number(static_cast<double>(registry_.published())));
  JsonValue queries = JsonValue::Object();
  queries.Set("selfjoin",
              JsonValue::Number(static_cast<double>(
                  queries_selfjoin_.load(MemOrder::kRelaxed))));
  queries.Set("join", JsonValue::Number(static_cast<double>(
                          queries_join_.load(MemOrder::kRelaxed))));
  queries.Set("point", JsonValue::Number(static_cast<double>(
                           queries_point_.load(MemOrder::kRelaxed))));
  queries.Set("distinct",
              JsonValue::Number(static_cast<double>(
                  queries_distinct_.load(MemOrder::kRelaxed))));
  queries.Set("quantile",
              JsonValue::Number(static_cast<double>(
                  queries_quantile_.load(MemOrder::kRelaxed))));
  queries.Set("subpop", JsonValue::Number(static_cast<double>(
                            queries_subpop_.load(MemOrder::kRelaxed))));
  body.Set("queries", std::move(queries));
  body.Set("degraded_answers",
           JsonValue::Number(static_cast<double>(
               degraded_answers_.load(MemOrder::kRelaxed))));
  body.Set("deadline_rejected",
           JsonValue::Number(static_cast<double>(
               deadline_rejected_.load(MemOrder::kRelaxed))));
  body.Set("ingest_duplicates",
           JsonValue::Number(static_cast<double>(
               ingest_duplicates_.load(MemOrder::kRelaxed))));
  // Server-level overload counters (absent when no HTTP server filled the
  // context, e.g. router-level tests).
  if (context.server.valid) {
    JsonValue server = JsonValue::Object();
    server.Set("connections_rejected",
               JsonValue::Number(static_cast<double>(
                   context.server.connections_rejected)));
    server.Set("admission_rejected",
               JsonValue::Number(static_cast<double>(
                   context.server.admission_rejected)));
    server.Set("deadline_exceeded",
               JsonValue::Number(static_cast<double>(
                   context.server.deadline_exceeded)));
    body.Set("server", std::move(server));
  }
  if (context.admission != nullptr) {
    const AdmissionController::Stats adm = context.admission->stats();
    JsonValue admission = JsonValue::Object();
    admission.Set("offered",
                  JsonValue::Number(static_cast<double>(adm.offered)));
    admission.Set("admitted",
                  JsonValue::Number(static_cast<double>(adm.admitted)));
    admission.Set("shed", JsonValue::Number(static_cast<double>(adm.shed)));
    admission.Set("rejected",
                  JsonValue::Number(static_cast<double>(adm.rejected)));
    admission.Set("windows",
                  JsonValue::Number(static_cast<double>(adm.windows)));
    admission.Set("admit_rate", JsonValue::Number(adm.admit_rate));
    admission.Set("inflight",
                  JsonValue::Number(static_cast<double>(adm.inflight)));
    body.Set("admission", std::move(admission));
  }
  auto guard = registry_.Read(context.reader_slot);
  if (guard) {
    JsonValue snapshot = JsonValue::Object();
    snapshot.Set("position",
                 JsonValue::Number(static_cast<double>(guard->position)));
    snapshot.Set("kept", JsonValue::Number(static_cast<double>(guard->kept)));
    snapshot.Set("sequence",
                 JsonValue::Number(static_cast<double>(guard->sequence)));
    snapshot.Set("p", JsonValue::Number(guard->p));
    snapshot.Set("realized_p", JsonValue::Number(guard->realized_p()));
    snapshot.Set("distinct_enabled", JsonValue::Bool(guard->distinct.has_value()));
    snapshot.Set("quantile_enabled",
                 JsonValue::Bool(guard->quantile.has_value()));
    snapshot.Set("subpop_enabled", JsonValue::Bool(guard->subpop.has_value()));
    snapshot.Set("staleness",
                 JsonValue::Number(static_cast<double>(
                     SnapshotStaleness(*guard, CurrentFreshness(context)))));
    body.Set("snapshot", std::move(snapshot));
  }
  return JsonResponse(200, body);
}

QueryFreshness SketchService::CurrentFreshness(
    const RequestContext& context) const {
  QueryFreshness fresh;
  fresh.pushed = pushed();
  // Ingest stalled: the ingest thread died on an error, or exited (engine
  // stop) while the source is still accepting tuples nobody will consume.
  fresh.ingest_stalled =
      !ingest_error().empty() || (ingest_done() && !source_.closed());
  fresh.admission_saturated = context.admission_saturated;
  fresh.freshness_lag = options_.freshness_lag;
  return fresh;
}

HttpResponse SketchService::Handle(Endpoint endpoint,
                                   const HttpRequest& request,
                                   const RequestContext& context) {
  switch (endpoint) {
    case Endpoint::kIngest:
      return HandleIngest(request);
    case Endpoint::kIngestClose: {
      CloseIngest();
      JsonValue body = JsonValue::Object();
      body.Set("closed", JsonValue::Bool(true));
      body.Set("pushed", JsonValue::Number(static_cast<double>(pushed())));
      return JsonResponse(200, body);
    }
    case Endpoint::kHealth: {
      JsonValue body = JsonValue::Object();
      body.Set("ok", JsonValue::Bool(true));
      return JsonResponse(200, body);
    }
    case Endpoint::kStats:
      return HandleStats(context);
    default:
      break;
  }

  // Shed compute that is already late: a request whose deadline expired
  // during read or queueing gets a clean 503 instead of burning snapshot
  // work nobody will wait for.
  if (context.DeadlineExpired()) {
    deadline_rejected_.fetch_add(1, MemOrder::kRelaxed);
    SKETCHSAMPLE_METRIC_INC("service.deadline_exceeded");
    HttpResponse response = ErrorResponse(503, "deadline exceeded");
    response.retry_after_s = 1;
    return response;
  }

  auto guard = registry_.Read(context.reader_slot);
  if (!guard) {
    return ErrorResponse(503, "no snapshot published yet");
  }
  double level = options_.default_level;
  if (const std::string* text = request.QueryParam("level")) {
    char* end = nullptr;
    const double parsed = std::strtod(text->c_str(), &end);
    if (end == nullptr || *end != '\0' || text->empty() ||
        !std::isfinite(parsed) || parsed <= 0.0 || parsed >= 1.0) {
      return ErrorResponse(400, "level must be a number in (0, 1)");
    }
    level = parsed;
  }

  const QueryFreshness fresh = CurrentFreshness(context);
  if (DegradedAnswer(*guard, fresh)) {
    degraded_answers_.fetch_add(1, MemOrder::kRelaxed);
    SKETCHSAMPLE_METRIC_INC("service.degraded_answers");
  }

  switch (endpoint) {
    case Endpoint::kSelfJoin: {
      queries_selfjoin_.fetch_add(1, MemOrder::kRelaxed);
      SKETCHSAMPLE_METRIC_INC("service.query.selfjoin");
      return JsonResponse(200,
                          SelfJoinResponseJson(*guard, options_.moments_f,
                                               level, fresh));
    }
    case Endpoint::kJoin: {
      if (!reference_.has_value()) {
        return ErrorResponse(
            400, "no join reference sketch configured (serve --join-sketch)");
      }
      queries_join_.fetch_add(1, MemOrder::kRelaxed);
      SKETCHSAMPLE_METRIC_INC("service.query.join");
      return JsonResponse(
          200, JoinResponseJson(*guard, *reference_, options_.moments_f,
                                options_.moments_g, level, fresh));
    }
    case Endpoint::kPoint: {
      const std::string* key_text = request.QueryParam("key");
      uint64_t key = 0;
      if (key_text == nullptr || !ParseUint64(*key_text, &key)) {
        return ErrorResponse(400,
                             "point query requires ?key=<unsigned decimal>");
      }
      queries_point_.fetch_add(1, MemOrder::kRelaxed);
      SKETCHSAMPLE_METRIC_INC("service.query.point");
      return JsonResponse(200, PointResponseJson(*guard, key,
                                                 options_.moments_f, level,
                                                 fresh));
    }
    case Endpoint::kDistinct: {
      if (!guard->distinct.has_value()) {
        return ErrorResponse(
            400, "distinct counting disabled (serve --distinct-k > 0)");
      }
      queries_distinct_.fetch_add(1, MemOrder::kRelaxed);
      SKETCHSAMPLE_METRIC_INC("service.query.distinct");
      return JsonResponse(200, DistinctResponseJson(*guard, level, fresh));
    }
    case Endpoint::kQuantile: {
      if (!guard->quantile.has_value()) {
        return ErrorResponse(
            400, "quantile queries disabled (serve --quantile-k > 0)");
      }
      const std::string* q_text = request.QueryParam("q");
      if (q_text == nullptr) {
        return ErrorResponse(400,
                             "quantile query requires ?q=<number in [0, 1]>");
      }
      char* end = nullptr;
      const double q = std::strtod(q_text->c_str(), &end);
      if (end == nullptr || *end != '\0' || q_text->empty() ||
          !std::isfinite(q) || q < 0.0 || q > 1.0) {
        return ErrorResponse(400,
                             "quantile query requires ?q=<number in [0, 1]>");
      }
      queries_quantile_.fetch_add(1, MemOrder::kRelaxed);
      SKETCHSAMPLE_METRIC_INC("service.query.quantile");
      return JsonResponse(200, QuantileResponseJson(*guard, q, level, fresh));
    }
    case Endpoint::kSubpop: {
      if (!guard->subpop.has_value()) {
        return ErrorResponse(
            400, "subpopulation queries disabled (serve --subpop-k > 0)");
      }
      const std::string* filter_text = request.QueryParam("filter");
      if (filter_text == nullptr) {
        return ErrorResponse(
            400, "subpop query requires ?filter=<range|mod|mask:a-b>");
      }
      SubpopPredicate pred;
      try {
        pred = ParseSubpopFilter(*filter_text);
      } catch (const std::invalid_argument& error) {
        return ErrorResponse(400, error.what());
      }
      queries_subpop_.fetch_add(1, MemOrder::kRelaxed);
      SKETCHSAMPLE_METRIC_INC("service.query.subpop");
      return JsonResponse(200, SubpopResponseJson(*guard, pred, level, fresh));
    }
    default:
      return ErrorResponse(500, "unroutable endpoint");
  }
}

}  // namespace sketchsample
