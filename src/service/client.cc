#include "src/service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "src/service/chaos.h"
#include "src/util/rng.h"

namespace sketchsample {

namespace {

bool SendAll(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ChaosSend(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

}  // namespace

int BackoffDelayMs(const ClientRetryPolicy& policy, int failures,
                   uint64_t salt) {
  if (policy.base_backoff_ms <= 0 || failures <= 0) return 0;
  // Shift capped so the doubling cannot overflow before the clamp.
  const int shift = std::min(failures - 1, 20);
  const int64_t raw = static_cast<int64_t>(policy.base_backoff_ms) << shift;
  const int64_t capped =
      std::min<int64_t>(raw, std::max(policy.max_backoff_ms, 0));
  // Jitter factor in [0.5, 1.0], drawn positionally: same seed and salt,
  // same delay.
  const uint64_t mixed = MixSeed(policy.jitter_seed, salt);
  const double unit =
      static_cast<double>(mixed >> 11) * 0x1.0p-53;  // [0, 1)
  return static_cast<int>(static_cast<double>(capped) * (0.5 + 0.5 * unit));
}

HttpClient::HttpClient(std::string host, int port, int timeout_ms)
    : host_(std::move(host)), port_(port), timeout_ms_(timeout_ms) {}

HttpClient::~HttpClient() { Disconnect(); }

void HttpClient::Disconnect() {
  if (fd_ >= 0) {
    ChaosOnClose(fd_);
    ::close(fd_);
    fd_ = -1;
  }
  leftover_.clear();
}

bool HttpClient::Connect(std::string* error) {
  Disconnect();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    *error = "socket() failed";
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    *error = "bad host address: " + host_;
    Disconnect();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = std::string("connect failed: ") + std::strerror(errno);
    Disconnect();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (timeout_ms_ > 0) {
    timeval tv{};
    tv.tv_sec = timeout_ms_ / 1000;
    tv.tv_usec = (timeout_ms_ % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  return true;
}

bool HttpClient::RoundTrip(const std::string& request, Response* out) {
  if (!SendAll(fd_, request.data(), request.size())) return false;

  std::string buffer = std::move(leftover_);
  leftover_.clear();
  char chunk[16384];
  size_t head_end;
  while ((head_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    if (buffer.size() > (1u << 20)) return false;  // runaway response head
    const ssize_t r = ChaosRecv(fd_, chunk, sizeof(chunk), 0);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return false;
    buffer.append(chunk, static_cast<size_t>(r));
  }

  const std::string head = buffer.substr(0, head_end);
  const size_t line_end = head.find("\r\n");
  const std::string status_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  if (status_line.size() < 12 || status_line.rfind("HTTP/1.", 0) != 0) {
    return false;
  }
  out->status = std::atoi(status_line.c_str() + 9);
  if (out->status < 100 || out->status > 599) return false;

  // Content-Length (the service always sends it).
  size_t content_length = 0;
  size_t pos = 0;
  bool have_length = false;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(pos, eol - pos);
    const size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string name = line.substr(0, colon);
      for (char& c : name) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      if (name == "content-length") {
        content_length = std::strtoull(line.c_str() + colon + 1, nullptr, 10);
        have_length = true;
      }
    }
    pos = eol + 2;
  }
  if (!have_length || content_length > (64u << 20)) return false;

  const size_t body_start = head_end + 4;
  while (buffer.size() - body_start < content_length) {
    const ssize_t r = ChaosRecv(fd_, chunk, sizeof(chunk), 0);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return false;
    buffer.append(chunk, static_cast<size_t>(r));
  }
  out->body = buffer.substr(body_start, content_length);
  leftover_ = buffer.substr(body_start + content_length);
  out->ok = true;
  return true;
}

HttpClient::Response HttpClient::Request(const std::string& method,
                                         const std::string& target,
                                         const std::string& body,
                                         const Headers& headers) {
  Response response;
  std::string request;
  request.reserve(128 + body.size());
  request += method;
  request += ' ';
  request += target;
  request += " HTTP/1.1\r\nHost: ";
  request += host_;
  request += "\r\nContent-Length: ";
  request += std::to_string(body.size());
  for (const auto& [name, value] : headers) {
    request += "\r\n";
    request += name;
    request += ": ";
    request += value;
  }
  request += "\r\nConnection: keep-alive\r\n\r\n";
  request += body;

  const int attempts = std::max(policy_.max_attempts, 1);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      // Deterministic capped exponential backoff; the running retry counter
      // positions the jitter draw so the delay sequence replays exactly.
      const int delay_ms = BackoffDelayMs(policy_, attempt, retries_++);
      if (delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      }
    }
    if (fd_ < 0 && !Connect(&response.error)) continue;
    if (RoundTrip(request, &response)) return response;
    // A dead keep-alive connection, a mid-response reset, or a timed-out
    // read all land here; the next attempt starts from a fresh connection.
    Disconnect();
  }
  response.ok = false;
  if (response.error.empty()) {
    response.error =
        "request failed after " + std::to_string(attempts) + " attempts: " +
        method + " " + target;
  }
  return response;
}

HttpClient::Response IngestClient::Post(const std::string& body) {
  const HttpClient::Headers headers = {
      {"X-Ingest-Session", std::to_string(session_)},
      {"X-Ingest-Seq", std::to_string(next_seq_)},
  };
  HttpClient::Response response =
      client_->Request("POST", "/ingest", body, headers);
  // A duplicate ack means a prior attempt was applied server-side; both
  // cases advance — the chunk is in the stream exactly once.
  if (response.ok && response.status == 200) ++next_seq_;
  return response;
}

}  // namespace sketchsample
