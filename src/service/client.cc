#include "src/service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace sketchsample {

namespace {

bool SendAll(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

}  // namespace

HttpClient::HttpClient(std::string host, int port, int timeout_ms)
    : host_(std::move(host)), port_(port), timeout_ms_(timeout_ms) {}

HttpClient::~HttpClient() { Disconnect(); }

void HttpClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  leftover_.clear();
}

bool HttpClient::Connect(std::string* error) {
  Disconnect();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    *error = "socket() failed";
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    *error = "bad host address: " + host_;
    Disconnect();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = std::string("connect failed: ") + std::strerror(errno);
    Disconnect();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (timeout_ms_ > 0) {
    timeval tv{};
    tv.tv_sec = timeout_ms_ / 1000;
    tv.tv_usec = (timeout_ms_ % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  return true;
}

bool HttpClient::RoundTrip(const std::string& request, Response* out) {
  if (!SendAll(fd_, request.data(), request.size())) return false;

  std::string buffer = std::move(leftover_);
  leftover_.clear();
  char chunk[16384];
  size_t head_end;
  while ((head_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    if (buffer.size() > (1u << 20)) return false;  // runaway response head
    const ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return false;
    buffer.append(chunk, static_cast<size_t>(r));
  }

  const std::string head = buffer.substr(0, head_end);
  const size_t line_end = head.find("\r\n");
  const std::string status_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  if (status_line.size() < 12 || status_line.rfind("HTTP/1.", 0) != 0) {
    return false;
  }
  out->status = std::atoi(status_line.c_str() + 9);
  if (out->status < 100 || out->status > 599) return false;

  // Content-Length (the service always sends it).
  size_t content_length = 0;
  size_t pos = 0;
  bool have_length = false;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(pos, eol - pos);
    const size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string name = line.substr(0, colon);
      for (char& c : name) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      if (name == "content-length") {
        content_length = std::strtoull(line.c_str() + colon + 1, nullptr, 10);
        have_length = true;
      }
    }
    pos = eol + 2;
  }
  if (!have_length || content_length > (64u << 20)) return false;

  const size_t body_start = head_end + 4;
  while (buffer.size() - body_start < content_length) {
    const ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return false;
    buffer.append(chunk, static_cast<size_t>(r));
  }
  out->body = buffer.substr(body_start, content_length);
  leftover_ = buffer.substr(body_start + content_length);
  out->ok = true;
  return true;
}

HttpClient::Response HttpClient::Request(const std::string& method,
                                         const std::string& target,
                                         const std::string& body) {
  Response response;
  std::string request;
  request.reserve(128 + body.size());
  request += method;
  request += ' ';
  request += target;
  request += " HTTP/1.1\r\nHost: ";
  request += host_;
  request += "\r\nContent-Length: ";
  request += std::to_string(body.size());
  request += "\r\nConnection: keep-alive\r\n\r\n";
  request += body;

  for (int attempt = 0; attempt < 2; ++attempt) {
    if (fd_ < 0 && !Connect(&response.error)) return response;
    if (RoundTrip(request, &response)) return response;
    // A kept-alive connection the server has since closed fails here; one
    // fresh-connection retry distinguishes that from a dead server.
    Disconnect();
  }
  response.ok = false;
  if (response.error.empty()) {
    response.error = "request failed after reconnect: " + method + " " + target;
  }
  return response;
}

}  // namespace sketchsample
