// Special functions and goodness-of-fit testing used by the statistical
// test suites (sampler laws, ξ balance) and available to library users for
// calibrating their own estimator runs.
#ifndef SKETCHSAMPLE_UTIL_DISTRIBUTIONS_H_
#define SKETCHSAMPLE_UTIL_DISTRIBUTIONS_H_

#include <cstddef>
#include <vector>

namespace sketchsample {

/// ln Γ(x) for x > 0 (Lanczos approximation, ~1e-10 absolute accuracy).
double LogGamma(double x);

/// Regularized lower incomplete gamma P(a, x) for a > 0, x >= 0.
/// Series expansion for x < a + 1, continued fraction otherwise.
double RegularizedGammaP(double a, double x);

/// CDF of the chi-square distribution with `dof` degrees of freedom.
double ChiSquareCdf(double x, double dof);

/// Result of a chi-square goodness-of-fit test.
struct ChiSquareResult {
  double statistic = 0;  ///< Σ (observed − expected)² / expected
  double dof = 0;        ///< categories − 1
  double p_value = 0;    ///< upper tail: P[X² >= statistic]
};

/// Pearson chi-square test of observed counts against expected counts.
/// Categories with expected < 1e-12 are skipped (and must have 0 observed,
/// else the statistic is infinite). Sizes must match and be >= 2.
ChiSquareResult ChiSquareGoodnessOfFit(const std::vector<double>& observed,
                                       const std::vector<double>& expected);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_UTIL_DISTRIBUTIONS_H_
