#include "src/util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace sketchsample {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

bool JsonValue::AsBool() const {
  if (type_ != Type::kBool) throw std::logic_error("JSON value is not a bool");
  return bool_;
}

double JsonValue::AsNumber() const {
  if (type_ != Type::kNumber) {
    throw std::logic_error("JSON value is not a number");
  }
  return number_;
}

const std::string& JsonValue::AsString() const {
  if (type_ != Type::kString) {
    throw std::logic_error("JSON value is not a string");
  }
  return string_;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  if (type_ != Type::kArray) {
    throw std::logic_error("JSON value is not an array");
  }
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::AsObject()
    const {
  if (type_ != Type::kObject) {
    throw std::logic_error("JSON value is not an object");
  }
  return object_;
}

const JsonValue* JsonValue::Get(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::Set(std::string key, JsonValue value) {
  if (type_ != Type::kObject) {
    throw std::logic_error("Set() on a non-object JSON value");
  }
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

std::optional<double> JsonValue::GetNumber(const std::string& key) const {
  const JsonValue* v = Get(key);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  return v->AsNumber();
}

std::optional<std::string> JsonValue::GetString(const std::string& key) const {
  const JsonValue* v = Get(key);
  if (v == nullptr || !v->is_string()) return std::nullopt;
  return v->AsString();
}

void JsonValue::Append(JsonValue value) {
  if (type_ != Type::kArray) {
    throw std::logic_error("Append() on a non-array JSON value");
  }
  array_.push_back(std::move(value));
}

namespace {

void EscapeString(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void FormatNumber(double d, std::string& out) {
  if (!std::isfinite(d)) {
    // JSON has no NaN/Inf; emit null so consumers notice the hole rather
    // than reading a bogus number.
    out += "null";
    return;
  }
  // Integers up to 2^53 print exactly, without a trailing ".0".
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

void Newline(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void JsonValue::DumpTo(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: FormatNumber(number_, out); break;
    case Type::kString: EscapeString(string_, out); break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        Newline(out, indent, depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out.push_back(',');
        Newline(out, indent, depth + 1);
        EscapeString(object_[i].first, out);
        out += indent > 0 ? ": " : ":";
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out.push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent parser over a string view of the input.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> Run() {
    SkipWhitespace();
    auto v = ParseValue(0);
    if (!v) return std::nullopt;
    SkipWhitespace();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  static constexpr int kMaxDepth = 200;

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* lit) {
    size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  std::optional<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return std::nullopt;
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case 'n':
        return ConsumeLiteral("null") ? std::optional<JsonValue>(
                                            JsonValue::Null())
                                      : std::nullopt;
      case 't':
        return ConsumeLiteral("true") ? std::optional<JsonValue>(
                                            JsonValue::Bool(true))
                                      : std::nullopt;
      case 'f':
        return ConsumeLiteral("false") ? std::optional<JsonValue>(
                                             JsonValue::Bool(false))
                                       : std::nullopt;
      case '"': return ParseString();
      case '[': return ParseArray(depth);
      case '{': return ParseObject(depth);
      default: return ParseNumber();
    }
  }

  bool AtDigit() const {
    return pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]));
  }

  // Strict JSON number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
  // strtod alone would also accept "+1", "01", "1.", ".5", hex, and inf/nan.
  std::optional<JsonValue> ParseNumber() {
    const size_t start = pos_;
    Consume('-');
    if (!AtDigit()) return std::nullopt;
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (AtDigit()) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!AtDigit()) return std::nullopt;
      while (AtDigit()) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!AtDigit()) return std::nullopt;
      while (AtDigit()) ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    // The grammar above already rejected everything strtod could choke on,
    // so the unchecked conversion is safe (huge magnitudes round to ±inf,
    // which the caller stores as an ordinary double).
    // NOLINTNEXTLINE(cert-err34-c)
    return JsonValue::Number(std::strtod(token.c_str(), nullptr));
  }

  std::optional<JsonValue> ParseString() {
    std::string s;
    if (!ParseRawString(s)) return std::nullopt;
    return JsonValue::String(std::move(s));
  }

  bool ParseRawString(std::string& out) {
    if (!Consume('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not needed
          // for bench metadata; a lone surrogate encodes as-is).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  std::optional<JsonValue> ParseArray(int depth) {
    if (!Consume('[')) return std::nullopt;
    JsonValue arr = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return arr;
    while (true) {
      SkipWhitespace();
      auto v = ParseValue(depth + 1);
      if (!v) return std::nullopt;
      arr.Append(std::move(*v));
      SkipWhitespace();
      if (Consume(']')) return arr;
      if (!Consume(',')) return std::nullopt;
    }
  }

  std::optional<JsonValue> ParseObject(int depth) {
    if (!Consume('{')) return std::nullopt;
    JsonValue obj = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return obj;
    while (true) {
      SkipWhitespace();
      std::string key;
      if (!ParseRawString(key)) return std::nullopt;
      SkipWhitespace();
      if (!Consume(':')) return std::nullopt;
      SkipWhitespace();
      auto v = ParseValue(depth + 1);
      if (!v) return std::nullopt;
      obj.Set(std::move(key), std::move(*v));
      SkipWhitespace();
      if (Consume('}')) return obj;
      if (!Consume(',')) return std::nullopt;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> JsonValue::Parse(const std::string& text) {
  return Parser(text).Run();
}

}  // namespace sketchsample
