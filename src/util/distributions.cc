#include "src/util/distributions.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace sketchsample {

double LogGamma(double x) {
  if (!(x > 0.0)) {
    throw std::invalid_argument("LogGamma needs x > 0");
  }
  // Lanczos approximation, g = 7, n = 9 coefficients.
  static const double kCoefficients[] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6,
      1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  x -= 1.0;
  double a = kCoefficients[0];
  const double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += kCoefficients[i] / (x + i);
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t +
         std::log(a);
}

namespace {

// Series representation of P(a, x), converges fast for x < a + 1.
double GammaPSeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Continued-fraction representation of Q(a, x) = 1 − P(a, x), for
// x >= a + 1 (modified Lentz).
double GammaQContinuedFraction(double a, double x) {
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x + a * std::log(x) - LogGamma(a));
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  if (!(a > 0.0) || x < 0.0) {
    throw std::invalid_argument("RegularizedGammaP needs a > 0, x >= 0");
  }
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double ChiSquareCdf(double x, double dof) {
  if (!(dof > 0.0)) {
    throw std::invalid_argument("chi-square needs dof > 0");
  }
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(dof / 2.0, x / 2.0);
}

ChiSquareResult ChiSquareGoodnessOfFit(const std::vector<double>& observed,
                                       const std::vector<double>& expected) {
  if (observed.size() != expected.size() || observed.size() < 2) {
    throw std::invalid_argument(
        "chi-square needs matching category vectors of size >= 2");
  }
  ChiSquareResult result;
  size_t used = 0;
  for (size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] < 1e-12) {
      if (observed[i] > 0) {
        result.statistic = std::numeric_limits<double>::infinity();
      }
      continue;
    }
    const double diff = observed[i] - expected[i];
    result.statistic += diff * diff / expected[i];
    ++used;
  }
  if (used < 2) {
    throw std::invalid_argument("chi-square needs >= 2 usable categories");
  }
  result.dof = static_cast<double>(used - 1);
  result.p_value =
      std::isinf(result.statistic)
          ? 0.0
          : 1.0 - ChiSquareCdf(result.statistic, result.dof);
  return result;
}

}  // namespace sketchsample
