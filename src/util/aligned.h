// Cache-line-aligned storage for sketch counter arrays.
//
// Counter rows are updated by the SIMD kernels in src/prng/simd/; aligning
// the allocation to 64 bytes guarantees vector loads/stores of counter
// blocks never split a cache line, and makes the row base address a known
// multiple of the vector width for the aligned scratch stores the kernels
// use. std::vector's default allocator only guarantees
// alignof(std::max_align_t) (16 on x86-64).
#ifndef SKETCHSAMPLE_UTIL_ALIGNED_H_
#define SKETCHSAMPLE_UTIL_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace sketchsample {

/// Minimal aligned allocator: every allocation is aligned to `Alignment`
/// bytes (a power of two >= alignof(T)) via the C++17 aligned operator new,
/// so sanitizers see matching sized/aligned new/delete pairs.
template <typename T, std::size_t Alignment>
class AlignedAllocator {
 public:
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment must be at least the type's natural alignment");

  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t n) {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// Counter storage for the sketches: 64-byte-aligned doubles.
using CounterVector = std::vector<double, AlignedAllocator<double, 64>>;

/// Bytes actually reserved for `count` doubles once the allocation is padded
/// out to whole 64-byte lines; MemoryBytes() reports this instead of the raw
/// element size so the footprint accounting matches the allocator.
inline std::size_t AlignedCounterBytes(std::size_t count) {
  const std::size_t raw = count * sizeof(double);
  return (raw + 63) & ~static_cast<std::size_t>(63);
}

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_UTIL_ALIGNED_H_
