// Wall-clock timing helper for throughput measurements.
#ifndef SKETCHSAMPLE_UTIL_TIMER_H_
#define SKETCHSAMPLE_UTIL_TIMER_H_

#include <chrono>

namespace sketchsample {

/// Monotonic stopwatch. Start() resets; ElapsedSeconds() reads without
/// stopping, so one timer can bracket several phases.
class Timer {
 public:
  Timer() { Start(); }

  void Start() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedNanos() const { return ElapsedSeconds() * 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_UTIL_TIMER_H_
