// Process-wide metrics registry: named atomic counters and wall-clock timer
// statistics, designed so instrumentation in hot paths (sketch updates,
// sampling decisions, pipeline pumps) costs one relaxed atomic load and a
// predictable branch when metrics are disabled — the default.
//
// Usage in library code:
//
//   SKETCHSAMPLE_METRIC_INC("sketch.fagms.updates");
//   SKETCHSAMPLE_METRIC_ADD("sampling.bernoulli.kept", kept);
//   { SKETCHSAMPLE_METRIC_SCOPED_TIMER("stream.pipeline"); ... }
//
// Usage in binaries that want the numbers:
//
//   metrics::SetEnabled(true);
//   ... run workload ...
//   JsonValue snapshot = metrics::Registry::Global().ToJson();
//
// Counters are cumulative uint64 values; timers record per-interval wall
// seconds and expose count/total/mean/percentiles. Both are thread-safe:
// counters via relaxed atomics, timers via a mutex (timer Record() is not a
// per-tuple operation, so a mutex is fine).
#ifndef SKETCHSAMPLE_UTIL_METRICS_H_
#define SKETCHSAMPLE_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/json.h"
#include "src/util/stats.h"
#include "src/util/timer.h"

namespace sketchsample {
namespace metrics {

/// Global on/off switch. Off by default so instrumented hot loops pay only
/// the load+branch. Flipping it on mid-run is safe; counts accumulate from
/// that point.
bool Enabled();
void SetEnabled(bool enabled);

/// A monotone counter. Address-stable once created (the registry hands out
/// references that stay valid for the process lifetime).
class Counter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Wall-clock interval statistics: count, total, mean, and percentiles over
/// the recorded intervals (p50/p90/p99 via linear interpolation).
class TimerStat {
 public:
  void Record(double seconds);
  void Reset();

  size_t Count() const;
  double TotalSeconds() const;
  double MeanSeconds() const;
  double QuantileSeconds(double p) const;

 private:
  mutable std::mutex mu_;
  RunningStats stats_;
  std::vector<double> samples_;
};

/// Snapshot rows for reporting.
struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};
struct TimerSnapshot {
  std::string name;
  size_t count = 0;
  double total_seconds = 0;
  double mean_seconds = 0;
  double p50_seconds = 0;
  double p90_seconds = 0;
  double p99_seconds = 0;
};

/// Name → metric registry. GetCounter/GetTimer create on first use and
/// return a stable reference; lookups take a mutex, which is why call sites
/// cache the reference in a function-local static (see the macros below).
class Registry {
 public:
  static Registry& Global();

  Counter& GetCounter(const std::string& name);
  TimerStat& GetTimer(const std::string& name);

  /// Zeroes every metric (keeps registrations). Benchmarks call this
  /// between phases so each report covers exactly one workload.
  void ResetAll();

  std::vector<CounterSnapshot> Counters() const;
  std::vector<TimerSnapshot> Timers() const;

  /// {"counters": {name: value, ...}, "timers": {name: {...}, ...}}
  JsonValue ToJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<TimerStat>> timers_;
};

/// RAII wall-clock interval recorder. Does nothing when metrics were
/// disabled at construction time.
class ScopedTimer {
 public:
  explicit ScopedTimer(const std::string& name)
      : stat_(Enabled() ? &Registry::Global().GetTimer(name) : nullptr) {}
  ~ScopedTimer() {
    if (stat_ != nullptr) stat_->Record(timer_.ElapsedSeconds());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimerStat* stat_;
  Timer timer_;
};

}  // namespace metrics
}  // namespace sketchsample

// Hot-path hooks. The function-local static caches the registry lookup, so
// the steady-state enabled cost is one relaxed load, one branch, and one
// relaxed fetch_add; the disabled cost is the load and branch only.
#define SKETCHSAMPLE_METRIC_ADD(name, delta)                             \
  do {                                                                   \
    if (::sketchsample::metrics::Enabled()) {                            \
      static ::sketchsample::metrics::Counter& sk_metric_counter =       \
          ::sketchsample::metrics::Registry::Global().GetCounter(name);  \
      sk_metric_counter.Add(static_cast<uint64_t>(delta));               \
    }                                                                    \
  } while (0)

#define SKETCHSAMPLE_METRIC_INC(name) SKETCHSAMPLE_METRIC_ADD(name, 1)

#define SKETCHSAMPLE_METRIC_CONCAT_(a, b) a##b
#define SKETCHSAMPLE_METRIC_CONCAT(a, b) SKETCHSAMPLE_METRIC_CONCAT_(a, b)
#define SKETCHSAMPLE_METRIC_SCOPED_TIMER(name)             \
  ::sketchsample::metrics::ScopedTimer SKETCHSAMPLE_METRIC_CONCAT( \
      sk_scoped_timer_, __LINE__)(name)

#endif  // SKETCHSAMPLE_UTIL_METRICS_H_
