// Summary statistics over repeated experiment trials.
#ifndef SKETCHSAMPLE_UTIL_STATS_H_
#define SKETCHSAMPLE_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace sketchsample {

/// Welford-style online accumulator for mean and (unbiased) variance.
/// Numerically stable for long runs of trials.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations seen so far.
  size_t count() const { return count_; }
  /// Sample mean; 0 when empty.
  double Mean() const { return mean_; }
  /// Unbiased sample variance (divides by n-1); 0 when count < 2.
  double Variance() const;
  /// Square root of Variance().
  double StdDev() const;
  /// Standard error of the mean: StdDev()/sqrt(n).
  double StdError() const;

  /// Merges another accumulator into this one (parallel reduction).
  void Merge(const RunningStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Relative error |estimate - truth| / |truth|; if truth == 0, returns
/// |estimate| so the metric stays finite and monotone in the error.
double RelativeError(double estimate, double truth);

/// Median of a vector (by copy); averages the middle two for even sizes.
/// Returns 0 for an empty input.
double Median(std::vector<double> values);

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& values);

/// Empirical p-quantile (linear interpolation between order statistics).
/// p is clamped to [0, 1]. Returns 0 for an empty input.
double Quantile(std::vector<double> values, double p);

/// Summary of the relative-error distribution over repeated trials of an
/// estimator. This is the unit every experiment in bench/ reports.
struct ErrorSummary {
  size_t trials = 0;
  double mean_error = 0.0;    ///< average relative error (paper's metric)
  double error_stderr = 0.0;  ///< standard error of mean_error across trials
  double median_error = 0.0;  ///< robust central tendency
  double p90_error = 0.0;     ///< tail behaviour
  double mean_estimate = 0.0; ///< average of the raw estimates
  double estimate_variance = 0.0;  ///< empirical variance of raw estimates
};

/// Builds an ErrorSummary from raw per-trial estimates and the true value.
ErrorSummary SummarizeErrors(const std::vector<double>& estimates,
                             double truth);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_UTIL_STATS_H_
