// Minimal command-line flag parsing for bench/example binaries.
//
// Flags are of the form --name=value or --name value. Unknown flags are an
// error (caught early so experiment sweeps never silently ignore a typo'd
// parameter). Every bench binary registers its parameters through this class
// so that paper-scale runs are a flag away from the fast defaults.
#ifndef SKETCHSAMPLE_UTIL_FLAGS_H_
#define SKETCHSAMPLE_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sketchsample {

/// Registry + parser for a binary's command-line flags.
class Flags {
 public:
  /// Registers a flag with a default value and help text. Must be called
  /// before Parse(). Returns *this for chaining.
  Flags& Define(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Parses argv. Returns false (and prints usage to stderr) on any unknown
  /// flag, malformed argument, or --help.
  bool Parse(int argc, char** argv);

  /// Typed accessors; the flag must have been defined.
  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// Parses a comma-separated list of doubles ("0.1,0.5,1").
  std::vector<double> GetDoubleList(const std::string& name) const;
  /// Parses a comma-separated list of integers.
  std::vector<int64_t> GetIntList(const std::string& name) const;

  /// Prints flag names, defaults, and help text to stderr.
  void PrintUsage(const std::string& program) const;

 private:
  struct FlagInfo {
    std::string value;
    std::string default_value;
    std::string help;
  };
  std::map<std::string, FlagInfo> flags_;
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_UTIL_FLAGS_H_
