// Pseudo-random number generation utilities.
//
// The library separates two kinds of randomness:
//   * "driver" randomness (this file): fast, high-quality generators used to
//     drive sampling processes, data generation, and seed derivation;
//   * "scheme" randomness (src/prng/): limited-independence families with
//     provable k-wise independence guarantees required by the AGMS analysis.
//
// The generators here are deterministic functions of their seed so that every
// experiment in the repository is reproducible bit-for-bit.
#ifndef SKETCHSAMPLE_UTIL_RNG_H_
#define SKETCHSAMPLE_UTIL_RNG_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace sketchsample {

/// SplitMix64 step function. Used to expand a single 64-bit seed into an
/// arbitrary-length seed sequence (as recommended by the xoshiro authors) and
/// as a cheap stateless mixer for seed derivation.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix of two 64-bit values; used to derive independent sub-seeds
/// (e.g. one per repetition of an experiment) from a master seed.
inline uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  uint64_t s = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  s = SplitMix64(&s);
  return SplitMix64(&s);
}

/// xoshiro256** 1.0 — the all-purpose driver generator.
///
/// Satisfies the C++ UniformRandomBitGenerator concept so it can be plugged
/// into <random> distributions. Passes BigCrush; period 2^256 - 1.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  explicit Xoshiro256(uint64_t seed = 0xdeadbeefcafef00dULL) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(&sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  uint64_t operator()() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// The full 256-bit generator state, exposed so stateful processes built
  /// on the generator (samplers, shed operators) can be checkpointed and
  /// resumed bit-exactly (src/stream/checkpoint.h).
  using State = std::array<uint64_t, 4>;
  State SaveState() const { return {state_[0], state_[1], state_[2], state_[3]}; }
  void RestoreState(const State& state) {
    for (size_t i = 0; i < state.size(); ++i) state_[i] = state[i];
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  uint64_t NextBounded(uint64_t bound) {
    // Multiply-shift rejection sampling.
    uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (l < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_UTIL_RNG_H_
