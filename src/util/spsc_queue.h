// Bounded single-producer / single-consumer ring buffer.
//
// The shard engine (src/stream/shard_engine.h) moves chunks from one router
// thread to each worker over one of these rings: exactly one thread pushes
// and exactly one thread pops, which is what lets the queue synchronize with
// two atomic indices and no locks. head_ counts pushes and is written only
// by the producer; tail_ counts pops and is written only by the consumer.
// Each side publishes with a release store and observes the other side with
// an acquire load, so the element written before a push is visible to the
// consumer that observes the advanced head — the only ordering the engine
// needs.
//
// The protocol is parameterized over an atomics policy (see
// src/util/atomics_policy.h): production instantiates `StdAtomics` (plain
// std::atomic, zero codegen change), the model checker instantiates
// `mc::McAtomics` and exhaustively explores the interleavings and stale
// reads the memory model permits (tests/mc_spec_test.cc proves
// no-loss/no-dup/FIFO at small capacities; the mutation suite proves every
// one-notch memory-order weakening below is detectable).
//
// The indices live on separate cache lines (alignas the assumed 64-byte
// line) so the producer's head stores do not invalidate the consumer's tail
// line and vice versa; on top of that, each side caches the opposing index
// and re-reads it only when the cached value says the ring looks full/empty,
// cutting the steady-state coherence traffic to ~one acquire per wrap.
//
// Capacity is rounded up to a power of two so position -> slot mapping is a
// bitmask (no division on the hot path). A full ring makes TryPush return
// false — the caller decides whether to spin, yield, or count the event as
// backpressure (the shard engine feeds it to the ShedController).
#ifndef SKETCHSAMPLE_UTIL_SPSC_QUEUE_H_
#define SKETCHSAMPLE_UTIL_SPSC_QUEUE_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "src/util/atomics_policy.h"

namespace sketchsample {

/// Bounded lock-free SPSC FIFO. T must be movable. Not copyable; the two
/// endpoints hold a reference each.
template <typename T, typename Policy = StdAtomics>
class SpscQueue {
 public:
  /// Holds at least `min_capacity` elements (rounded up to a power of two,
  /// minimum 2).
  explicit SpscQueue(size_t min_capacity)
      : mask_(RoundUpPow2(min_capacity < 2 ? 2 : min_capacity) - 1),
        slots_(mask_ + 1) {}

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. Moves `value` into the ring and returns true, or
  /// returns false (value untouched) when the ring is full.
  bool TryPush(T& value) {
    const size_t head = head_.load(MemOrder::kRelaxed);
    if (head - cached_tail_ > mask_) {
      cached_tail_ = tail_.load(MemOrder::kAcquire);
      if (head - cached_tail_ > mask_) return false;  // genuinely full
    }
    slots_[head & mask_].Store(std::move(value));
    head_.store(head + 1, MemOrder::kRelease);
    return true;
  }
  bool TryPush(T&& value) { return TryPush(value); }

  /// Consumer side. Moves the oldest element into `out` and returns true,
  /// or returns false when the ring is empty.
  bool TryPop(T& out) {
    const size_t tail = tail_.load(MemOrder::kRelaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(MemOrder::kAcquire);
      if (tail == cached_head_) return false;  // genuinely empty
    }
    out = slots_[tail & mask_].Take();
    tail_.store(tail + 1, MemOrder::kRelease);
    return true;
  }

  /// Instantaneous element count. Approximate under concurrency (each index
  /// is read once, possibly mid-operation); exact when the queue is quiesced.
  size_t SizeApprox() const {
    const size_t head = head_.load(MemOrder::kAcquire);
    const size_t tail = tail_.load(MemOrder::kAcquire);
    return head - tail;
  }

  size_t capacity() const { return mask_ + 1; }

 private:
  static size_t RoundUpPow2(size_t v) {
    --v;
    for (size_t shift = 1; shift < sizeof(size_t) * 8; shift <<= 1) {
      v |= v >> shift;
    }
    return v + 1;
  }

  const size_t mask_;
  std::vector<typename Policy::template Plain<T>> slots_;
  // Producer cache line: the push index plus the producer's stale view of
  // the pop index.
  alignas(64) typename Policy::template Atomic<size_t> head_{0, "spsc.head"};
  size_t cached_tail_ = 0;
  // Consumer cache line: the pop index plus the consumer's stale view of
  // the push index.
  alignas(64) typename Policy::template Atomic<size_t> tail_{0, "spsc.tail"};
  size_t cached_head_ = 0;
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_UTIL_SPSC_QUEUE_H_
