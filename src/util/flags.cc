#include "src/util/flags.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace sketchsample {

Flags& Flags::Define(const std::string& name, const std::string& default_value,
                     const std::string& help) {
  flags_[name] = FlagInfo{default_value, default_value, help};
  return *this;
}

bool Flags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", arg.c_str());
      PrintUsage(argv[0]);
      return false;
    }
    std::string body = arg.substr(2);
    std::string name, value;
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s is missing a value\n", name.c_str());
        PrintUsage(argv[0]);
        return false;
      }
      value = argv[++i];
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
      PrintUsage(argv[0]);
      return false;
    }
    it->second.value = value;
  }
  return true;
}

std::string Flags::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::invalid_argument("undefined flag: " + name);
  }
  return it->second.value;
}

int64_t Flags::GetInt(const std::string& name) const {
  return std::stoll(GetString(name));
}

double Flags::GetDouble(const std::string& name) const {
  return std::stod(GetString(name));
}

bool Flags::GetBool(const std::string& name) const {
  std::string v = GetString(name);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::vector<double> Flags::GetDoubleList(const std::string& name) const {
  std::vector<double> out;
  std::stringstream ss(GetString(name));
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stod(item));
  }
  return out;
}

std::vector<int64_t> Flags::GetIntList(const std::string& name) const {
  std::vector<int64_t> out;
  std::stringstream ss(GetString(name));
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stoll(item));
  }
  return out;
}

void Flags::PrintUsage(const std::string& program) const {
  std::fprintf(stderr, "usage: %s [--flag=value ...]\n", program.c_str());
  for (const auto& [name, info] : flags_) {
    std::fprintf(stderr, "  --%-24s %s (default: %s)\n", name.c_str(),
                 info.help.c_str(), info.default_value.c_str());
  }
}

}  // namespace sketchsample
