// The atomics-policy seam: the one header allowed to spell std::atomic.
//
// The three hand-rolled lock-free primitives (src/util/spsc_queue.h,
// src/util/once_latch.h, src/service/snapshot.h) are templates over an
// *atomics policy* so the exact same protocol code runs in two worlds:
//
//   * production: `StdAtomics` (this header) — thin wrappers that compile
//     down to the std::atomic operations they replace, zero codegen change
//     (verified by the SIMD dispatch and shard-engine bit-exactness suites);
//   * under test: `mc::McAtomics` (src/mc/atomic.h) — every load/store/RMW
//     is recorded by the interleaving model checker, which explores the
//     schedules and stale-read choices the C++ memory model permits.
//
// The invariant linter rule `raw-atomic-confined` keeps this layer closed:
// `std::atomic` / `std::memory_order` may appear only here, in
// src/util/metrics.* (relaxed counters with no inter-thread protocol), and
// in files carrying an explicit waiver. Everything that implements an
// acquire/release protocol goes through a policy so it stays checkable.
//
// The policy contract (what mc::McAtomics mirrors):
//
//   template <class T> class Atomic;   // load/store/exchange/fetch_add/
//                                      // compare_exchange_strong, MemOrder
//   template <class T> class Plain;    // non-atomic cell the protocol
//                                      // publishes (Read/Store/Take); the
//                                      // checker race-detects accesses
//   static void Fence(MemOrder);
//   static void Yield();               // spin-loop hint; a scheduling point
//                                      // under the checker
#ifndef SKETCHSAMPLE_UTIL_ATOMICS_POLICY_H_
#define SKETCHSAMPLE_UTIL_ATOMICS_POLICY_H_

#include <atomic>
#include <utility>

namespace sketchsample {

/// Memory orders, decoupled from <atomic> so policy-generic code never
/// names std::memory_order (keeping the raw-atomic-confined layer closed)
/// and so the model checker can treat orders as plain data it can weaken
/// one notch at a time in the mutation suite.
enum class MemOrder {
  kRelaxed,
  kAcquire,
  kRelease,
  kAcqRel,
  kSeqCst,
};

/// Production policy: forwards to std::atomic with no added state. Every
/// member is expected to inline to exactly the call it wraps.
struct StdAtomics {
  static constexpr std::memory_order ToStd(MemOrder order) {
    switch (order) {
      case MemOrder::kRelaxed:
        return std::memory_order_relaxed;
      case MemOrder::kAcquire:
        return std::memory_order_acquire;
      case MemOrder::kRelease:
        return std::memory_order_release;
      case MemOrder::kAcqRel:
        return std::memory_order_acq_rel;
      case MemOrder::kSeqCst:
        break;
    }
    return std::memory_order_seq_cst;
  }

  template <typename T>
  class Atomic {
   public:
    constexpr Atomic() noexcept : value_{} {}
    constexpr explicit Atomic(T init) noexcept : value_(init) {}
    // The name is carried for the model-checker twin (schedule traces and
    // mutation sites are keyed by it); production drops it at compile time.
    constexpr Atomic(T init, const char* /*name*/) noexcept : value_(init) {}

    Atomic(const Atomic&) = delete;
    Atomic& operator=(const Atomic&) = delete;

    T load(MemOrder order = MemOrder::kSeqCst) const {
      return value_.load(ToStd(order));
    }
    void store(T desired, MemOrder order = MemOrder::kSeqCst) {
      value_.store(desired, ToStd(order));
    }
    T exchange(T desired, MemOrder order = MemOrder::kSeqCst) {
      return value_.exchange(desired, ToStd(order));
    }
    T fetch_add(T delta, MemOrder order = MemOrder::kSeqCst) {
      return value_.fetch_add(delta, ToStd(order));
    }
    bool compare_exchange_strong(T& expected, T desired, MemOrder success,
                                 MemOrder failure) {
      return value_.compare_exchange_strong(expected, desired, ToStd(success),
                                            ToStd(failure));
    }

   private:
    std::atomic<T> value_;
  };

  /// Non-atomic data published across threads by the surrounding protocol
  /// (ring slots, latched values). In production this is a bare T; under
  /// the checker every access is race-checked against the happens-before
  /// edges the protocol's atomics actually established.
  template <typename T>
  class Plain {
   public:
    Plain() = default;
    explicit Plain(T init) : value_(std::move(init)) {}

    const T& Read() const { return value_; }
    template <typename U>
    void Store(U&& desired) {
      value_ = std::forward<U>(desired);
    }
    /// Move the value out (a write access: it mutates the cell).
    T Take() { return std::move(value_); }

   private:
    T value_{};
  };

  static void Fence(MemOrder order) { std::atomic_thread_fence(ToStd(order)); }

  /// Spin-loop politeness hint. Production pauses the core; the checker's
  /// twin deprioritizes the spinning model thread so bounded exploration
  /// is not wasted on schedules where a spinner starves its peer.
  static void Yield() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_UTIL_ATOMICS_POLICY_H_
