#include "src/util/crc32.h"

#include <array>

namespace sketchsample {

namespace {

// Byte-at-a-time table, built once at first use. Checkpoint payloads are
// small (a sketch plus a few dozen state words), so table lookup speed is
// ample; no need for the slice-by-8 variant.
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace sketchsample
