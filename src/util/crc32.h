// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Used as the integrity footer of pipeline checkpoints
// (src/stream/checkpoint.h). The sketch wire format keeps its original
// FNV-1a checksum for compatibility; CRC32 is the stronger choice for
// checkpoint files that survive process restarts and may cross disks, since
// it detects all burst errors up to 32 bits.
#ifndef SKETCHSAMPLE_UTIL_CRC32_H_
#define SKETCHSAMPLE_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace sketchsample {

/// CRC-32 of data[0..size). Standard init/final XOR with 0xFFFFFFFF, so the
/// result matches zlib's crc32() on the same bytes.
uint32_t Crc32(const uint8_t* data, size_t size);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_UTIL_CRC32_H_
