// ASCII table printing for experiment output.
//
// Every bench binary prints the series a paper figure plots as a plain table:
// one row per x-axis point, one column per plotted curve. Keeping the output
// format uniform lets EXPERIMENTS.md quote bench output directly.
#ifndef SKETCHSAMPLE_UTIL_TABLE_H_
#define SKETCHSAMPLE_UTIL_TABLE_H_

#include <cstddef>
#include <string>
#include <vector>

namespace sketchsample {

/// Accumulates rows of strings and renders them with aligned columns.
class TablePrinter {
 public:
  /// Sets the header row; defines the column count.
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds a data row. Rows shorter than the header are right-padded with "".
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with %.6g.
  void AddRow(const std::vector<double>& row);

  /// Renders to a string (header, separator, rows).
  std::string ToString() const;

  /// Renders to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double like printf("%.6g").
std::string FormatG(double value);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_UTIL_TABLE_H_
