#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace sketchsample {

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

double RunningStats::StdError() const {
  if (count_ == 0) return 0.0;
  return StdDev() / std::sqrt(static_cast<double>(count_));
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta *
                         (static_cast<double>(count_) *
                          static_cast<double>(other.count_) / total);
  mean_ += delta * static_cast<double>(other.count_) / total;
  count_ += other.count_;
}

double RelativeError(double estimate, double truth) {
  if (truth == 0.0) return std::abs(estimate);
  return std::abs(estimate - truth) / std::abs(truth);
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double hi = values[mid];
  if (values.size() % 2 == 1) return hi;
  double lo = *std::max_element(values.begin(), values.begin() + mid);
  return 0.5 * (lo + hi);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Quantile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = p * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

ErrorSummary SummarizeErrors(const std::vector<double>& estimates,
                             double truth) {
  ErrorSummary s;
  s.trials = estimates.size();
  if (estimates.empty()) return s;
  std::vector<double> errors;
  errors.reserve(estimates.size());
  RunningStats raw;
  RunningStats err;
  for (double e : estimates) {
    errors.push_back(RelativeError(e, truth));
    err.Add(errors.back());
    raw.Add(e);
  }
  s.mean_error = Mean(errors);
  s.error_stderr = err.StdError();
  s.median_error = Median(errors);
  s.p90_error = Quantile(errors, 0.9);
  s.mean_estimate = raw.Mean();
  s.estimate_variance = raw.Variance();
  return s;
}

}  // namespace sketchsample
