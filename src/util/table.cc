#include "src/util/table.h"

#include <cstdio>
#include <sstream>
#include <utility>

namespace sketchsample {

std::string FormatG(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(const std::vector<double>& row) {
  std::vector<std::string> formatted;
  formatted.reserve(row.size());
  for (double v : row) formatted.push_back(FormatG(v));
  AddRow(std::move(formatted));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out << "  ";
      out << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit_row(header_);
  std::vector<std::string> sep;
  sep.reserve(header_.size());
  for (size_t w : widths) sep.push_back(std::string(w, '-'));
  emit_row(sep);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::Print() const {
  std::fputs(ToString().c_str(), stdout);
}

}  // namespace sketchsample
