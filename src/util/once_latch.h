// One-time publication latch: the SIMD dispatch initialization atomic,
// extracted so the protocol is policy-parameterized and model-checkable.
//
// Exactly-once lazy initialization without the compiler's magic-static
// guard: the first caller to win the empty->busy CAS runs `init` and
// publishes the result with a release store; every other caller either
// fast-paths on the acquire load or spins (politely, via Policy::Yield)
// until the value is ready. Once ready, the latch is immutable: Get never
// re-runs init and never returns a different value — the monotonicity the
// dispatch layer relies on (a KernelTable pointer observed once can never
// revert to an earlier selection).
//
// Memory orders are minimal by design, which is what makes the mutation
// suite meaningful: weaken the ready-publish release or either acquire
// load one notch and the model checker exhibits a schedule where a caller
// returns an unsynchronized (torn) value (tests/mc_mutation_test.cc). The
// empty->busy CAS needs no ordering of its own — it only elects a winner;
// all publication runs through the release store of kReady.
#ifndef SKETCHSAMPLE_UTIL_ONCE_LATCH_H_
#define SKETCHSAMPLE_UTIL_ONCE_LATCH_H_

#include <cstdint>

#include "src/util/atomics_policy.h"

namespace sketchsample {

/// Exactly-once lazy initialization of a T shared across threads. T must be
/// copy/move-assignable; `init` may be called at most once per latch.
template <typename T, typename Policy = StdAtomics>
class OnceLatch {
 public:
  OnceLatch() = default;
  OnceLatch(const OnceLatch&) = delete;
  OnceLatch& operator=(const OnceLatch&) = delete;

  /// Returns the latched value, running `init` on the first caller. Safe to
  /// call from any number of threads; all callers observe the same fully
  /// constructed value.
  template <typename Init>
  const T& Get(Init&& init) {
    uint32_t state = state_.load(MemOrder::kAcquire);
    if (state != kReady) {
      if (state == kEmpty &&
          state_.compare_exchange_strong(state, kBusy, MemOrder::kRelaxed,
                                         MemOrder::kRelaxed)) {
        value_.Store(init());
        state_.store(kReady, MemOrder::kRelease);
      } else {
        // Lost the election (or caught the winner mid-init): wait for the
        // ready-publish. Bounded in practice by one init() execution.
        while (state_.load(MemOrder::kAcquire) != kReady) Policy::Yield();
      }
    }
    return value_.Read();
  }

  /// True once a value has been published (callers of Get will fast-path).
  bool Ready() const { return state_.load(MemOrder::kAcquire) == kReady; }

 private:
  static constexpr uint32_t kEmpty = 0;
  static constexpr uint32_t kBusy = 1;
  static constexpr uint32_t kReady = 2;

  typename Policy::template Atomic<uint32_t> state_{kEmpty, "latch.state"};
  typename Policy::template Plain<T> value_{};
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_UTIL_ONCE_LATCH_H_
