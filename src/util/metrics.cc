#include "src/util/metrics.h"

#include <algorithm>
#include <utility>

namespace sketchsample {
namespace metrics {

namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void TimerStat::Record(double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.Add(seconds);
  samples_.push_back(seconds);
}

void TimerStat::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = RunningStats();
  samples_.clear();
}

size_t TimerStat::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.count();
}

double TimerStat::TotalSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.Mean() * static_cast<double>(stats_.count());
}

double TimerStat::MeanSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.Mean();
}

double TimerStat::QuantileSeconds(double p) const {
  std::lock_guard<std::mutex> lock(mu_);
  return Quantile(samples_, p);
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // never destroyed: metrics
  return *registry;                            // may fire during shutdown
}

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

TimerStat& Registry::GetTimer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = timers_[name];
  if (slot == nullptr) slot = std::make_unique<TimerStat>();
  return *slot;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, timer] : timers_) timer->Reset();
}

std::vector<CounterSnapshot> Registry::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CounterSnapshot> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.push_back({name, counter->Get()});
  }
  return out;
}

std::vector<TimerSnapshot> Registry::Timers() const {
  std::vector<std::pair<std::string, TimerStat*>> refs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    refs.reserve(timers_.size());
    for (const auto& [name, timer] : timers_) refs.emplace_back(name, timer.get());
  }
  std::vector<TimerSnapshot> out;
  out.reserve(refs.size());
  for (const auto& [name, timer] : refs) {
    TimerSnapshot snap;
    snap.name = name;
    snap.count = timer->Count();
    snap.total_seconds = timer->TotalSeconds();
    snap.mean_seconds = timer->MeanSeconds();
    snap.p50_seconds = timer->QuantileSeconds(0.5);
    snap.p90_seconds = timer->QuantileSeconds(0.9);
    snap.p99_seconds = timer->QuantileSeconds(0.99);
    out.push_back(snap);
  }
  return out;
}

JsonValue Registry::ToJson() const {
  JsonValue root = JsonValue::Object();
  JsonValue counters = JsonValue::Object();
  for (const auto& snap : Counters()) {
    counters.Set(snap.name, JsonValue::Number(static_cast<double>(snap.value)));
  }
  root.Set("counters", std::move(counters));
  JsonValue timers = JsonValue::Object();
  for (const auto& snap : Timers()) {
    JsonValue t = JsonValue::Object();
    t.Set("count", JsonValue::Number(static_cast<double>(snap.count)));
    t.Set("total_seconds", JsonValue::Number(snap.total_seconds));
    t.Set("mean_seconds", JsonValue::Number(snap.mean_seconds));
    t.Set("p50_seconds", JsonValue::Number(snap.p50_seconds));
    t.Set("p90_seconds", JsonValue::Number(snap.p90_seconds));
    t.Set("p99_seconds", JsonValue::Number(snap.p99_seconds));
    timers.Set(snap.name, std::move(t));
  }
  root.Set("timers", std::move(timers));
  return root;
}

}  // namespace metrics
}  // namespace sketchsample
