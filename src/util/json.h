// Minimal JSON value type with parsing and serialization.
//
// Exists so the bench reporter (bench/report.h) and the regression gate
// (tools/bench_gate.cc) agree on one schema without an external dependency.
// Supports the full JSON data model; numbers are stored as double (enough
// for bench metrics; 2^53 integer precision).
#ifndef SKETCHSAMPLE_UTIL_JSON_H_
#define SKETCHSAMPLE_UTIL_JSON_H_

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace sketchsample {

/// A JSON document node. Object member order is preserved so emitted files
/// diff cleanly across runs.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue String(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed reads; throw std::logic_error on a type mismatch.
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;
  const std::vector<JsonValue>& AsArray() const;
  const std::vector<std::pair<std::string, JsonValue>>& AsObject() const;

  /// Object helpers. Get returns nullptr when the key is absent (or this is
  /// not an object); Set appends or overwrites.
  const JsonValue* Get(const std::string& key) const;
  void Set(std::string key, JsonValue value);

  /// Convenience typed lookups for gate/report code.
  std::optional<double> GetNumber(const std::string& key) const;
  std::optional<std::string> GetString(const std::string& key) const;

  /// Array append.
  void Append(JsonValue value);

  /// Serializes; `indent` > 0 pretty-prints with that many spaces per level.
  std::string Dump(int indent = 0) const;

  /// Parses `text`. Returns std::nullopt on any syntax error, trailing
  /// garbage, or nesting deeper than 200 levels.
  static std::optional<JsonValue> Parse(const std::string& text);

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_UTIL_JSON_H_
