#include "src/stream/window.h"

#include <stdexcept>
#include <utility>

namespace sketchsample {

namespace {
// Negative merge: subtracts `expired` from `sum` using sketch linearity.
void Subtract(FagmsSketch& sum, const FagmsSketch& expired) {
  FagmsSketch negated = expired;
  std::vector<double> counters(negated.counters().begin(),
                               negated.counters().end());
  for (double& c : counters) c = -c;
  negated.LoadCounters(std::move(counters));
  sum.Merge(negated);
}
}  // namespace

TumblingWindowSketch::TumblingWindowSketch(uint64_t window_size,
                                           size_t window_count,
                                           const SketchParams& params)
    : window_size_(window_size), sum_(params) {
  if (window_size == 0 || window_count == 0) {
    throw std::invalid_argument(
        "tumbling window needs positive window size and count");
  }
  windows_.reserve(window_count);
  for (size_t w = 0; w < window_count; ++w) windows_.emplace_back(params);
  window_fill_.assign(window_count, 0);
}

void TumblingWindowSketch::Update(uint64_t key) {
  if (current_fill_ == window_size_) {
    // Roll over: the next slot becomes current; whatever it held expires.
    current_ = (current_ + 1) % windows_.size();
    if (window_fill_[current_] > 0) {
      Subtract(sum_, windows_[current_]);
      in_window_ -= window_fill_[current_];
      FagmsSketch fresh(windows_[current_].params());
      windows_[current_] = std::move(fresh);
      window_fill_[current_] = 0;
    }
    current_fill_ = 0;
  }
  windows_[current_].Update(key);
  sum_.Update(key);
  ++current_fill_;
  window_fill_[current_] = current_fill_;
  ++in_window_;
  ++seen_;
}

}  // namespace sketchsample
