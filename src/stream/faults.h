// Deterministic fault injection for the streaming pipeline.
//
// Robustness claims are only as good as the failure modes they were tested
// against. This header provides seeded wrappers that inject the faults a
// production ingest path actually sees — corrupted values, duplicated and
// reordered tuples, short reads, bounded source stalls, and mid-stream
// source death — as pure functions of a 64-bit seed. Every run with the
// same seed, profile, and pull pattern produces the identical fault
// sequence, so a failing test prints its seed and the failure reproduces
// exactly.
//
// Stalls and death interact with the pipeline driver's retry policy
// (PipelineOptions::stall_retries): a bounded stall is ridden out by
// retrying the pull, while a dead source exhausts the retry budget and the
// pipeline degrades to a partial answer instead of hanging.
#ifndef SKETCHSAMPLE_STREAM_FAULTS_H_
#define SKETCHSAMPLE_STREAM_FAULTS_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/stream/operators.h"
#include "src/stream/source.h"
#include "src/util/metrics.h"
#include "src/util/rng.h"

namespace sketchsample {

/// What to inject and how often. Probabilities are per tuple (corrupt,
/// duplicate, reorder) or per pull (truncate); stall/death are positional.
struct FaultProfile {
  /// P[tuple value is XORed with random bits under corrupt_mask].
  double corrupt_prob = 0.0;
  uint64_t corrupt_mask = 0xFFULL;
  /// P[tuple is emitted twice].
  double duplicate_prob = 0.0;
  /// P[tuple is swapped with its predecessor inside the chunk].
  double reorder_prob = 0.0;
  /// P[a chunk pull is truncated to a random shorter length].
  double truncate_prob = 0.0;
  /// Every `stall_every` emitted tuples the source stalls for `stall_pulls`
  /// consecutive zero-length pulls (0 = never stall).
  uint64_t stall_every = 0;
  uint64_t stall_pulls = 0;
  /// After emitting this many tuples the source dies: it stalls forever
  /// (0 = never). A dead source is indistinguishable from an unbounded
  /// stall, which is exactly what the pipeline's retry budget is for.
  uint64_t die_after = 0;

  /// True when any fault can fire.
  bool Active() const;

  /// Named presets: "none", "mild" (rare corruption/duplication and short
  /// stalls), "harsh" (frequent everything plus truncated pulls). Throws
  /// std::invalid_argument for unknown names.
  static FaultProfile FromName(const std::string& name);
};

/// Wraps a StreamSource and injects faults on the pull path.
class FaultInjectingSource final : public StreamSource {
 public:
  /// `inner` must outlive this wrapper.
  FaultInjectingSource(StreamSource* inner, const FaultProfile& profile,
                       uint64_t seed);

  std::optional<uint64_t> Next() override;
  size_t NextChunk(uint64_t* out, size_t max_n) override;
  bool Stalled() const override { return stalled_; }

  /// Total faults injected so far, by any mechanism.
  uint64_t faults_injected() const { return faults_; }
  /// Tuples emitted downstream (post duplication/death).
  uint64_t emitted() const { return emitted_; }
  bool dead() const { return dead_; }

 private:
  size_t PullChunk(uint64_t* out, size_t max_n);

  StreamSource* inner_;
  FaultProfile profile_;
  Xoshiro256 rng_;
  std::vector<uint64_t> carry_;  // duplication overflow for the next pull
  uint64_t emitted_ = 0;
  uint64_t faults_ = 0;
  uint64_t next_stall_at_ = 0;   // emitted-count threshold for next episode
  uint64_t stall_left_ = 0;      // zero-length pulls left in this episode
  bool stalled_ = false;
  bool dead_ = false;
};

/// Wraps an Operator and injects tuple-level faults on the push path
/// (corrupt / duplicate / reorder; positional faults belong to the source).
///
/// Metrics: every injected fault increments the process-wide
/// "stream.faults.injected" counter. When the operator is given a shard
/// label (the sharded engine instantiates one wrapper per worker), the
/// fault additionally increments "stream.faults.injected.<label>" — so the
/// global counter stays the exact sum of the per-shard ones no matter how
/// chunks were routed. The counters are resolved through the registry
/// explicitly rather than via SKETCHSAMPLE_METRIC_*: the macro caches one
/// function-local Counter reference per call site, which would alias every
/// instance's per-shard counter to whichever label arrived first.
class FaultInjectingOperator final : public Operator {
 public:
  /// `downstream` must outlive this wrapper.
  FaultInjectingOperator(Operator* downstream, const FaultProfile& profile,
                         uint64_t seed);
  /// Same, tagged with a per-shard metric label (e.g. "shard3").
  FaultInjectingOperator(Operator* downstream, const FaultProfile& profile,
                         uint64_t seed, std::string shard_label);

  void OnTuple(uint64_t value) override;
  void OnTuples(const uint64_t* values, size_t n) override;
  void OnEnd() override { downstream_->OnEnd(); }

  uint64_t faults_injected() const { return faults_; }

 private:
  void CountFault();

  Operator* downstream_;
  FaultProfile profile_;
  Xoshiro256 rng_;
  std::vector<uint64_t> scratch_;
  uint64_t faults_ = 0;
  std::string shard_label_;
  // Registry counters, resolved on the first fault with metrics enabled
  // (GetCounter takes a lock; faults are rare enough that resolving lazily
  // keeps the no-fault path allocation-free).
  metrics::Counter* total_counter_ = nullptr;
  metrics::Counter* shard_counter_ = nullptr;
};

/// Seed override hook for CI: reads the decimal SKETCHSAMPLE_FAULT_SEED
/// environment variable, falling back to `fallback` when unset or
/// malformed. The chosen seed must be printed by any failing test so the
/// exact fault sequence reproduces.
uint64_t FaultSeedFromEnv(uint64_t fallback);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_STREAM_FAULTS_H_
