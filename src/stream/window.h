// Tumbling-window sketching: aggregates over the most recent W windows.
//
// Streams are usually queried over recent data, not the whole history.
// Because sketches are linear, a window abstraction costs only counter
// arithmetic: keep one sub-sketch per active window plus a running sum; on
// window rollover, subtract the expired sub-sketch from the sum (negative
// merge) and recycle it. Estimates over "the last W windows" come from the
// running sum at O(1) query cost; no rescan, no re-sketch.
#ifndef SKETCHSAMPLE_STREAM_WINDOW_H_
#define SKETCHSAMPLE_STREAM_WINDOW_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/sketch/fagms.h"
#include "src/sketch/sketch.h"

namespace sketchsample {

/// F-AGMS sketch over a tumbling window of the last `window_count` windows
/// of `window_size` tuples each.
class TumblingWindowSketch {
 public:
  /// `window_size` tuples per window, `window_count` >= 1 active windows.
  TumblingWindowSketch(uint64_t window_size, size_t window_count,
                       const SketchParams& params);

  /// Consumes the next stream tuple; expires the oldest window when the
  /// current one fills up.
  void Update(uint64_t key);

  /// Sketch of everything currently inside the window (for joins against
  /// other windowed sketches with compatible params).
  const FagmsSketch& WindowSketch() const { return sum_; }

  /// Self-join size of the tuples inside the window.
  double EstimateSelfJoin() const { return sum_.EstimateSelfJoin(); }

  /// Point frequency inside the window.
  double EstimateFrequency(uint64_t key) const {
    return sum_.EstimateFrequency(key);
  }

  /// Tuples currently covered (grows to window_size × window_count, then
  /// oscillates as whole windows expire).
  uint64_t tuples_in_window() const { return in_window_; }
  /// Total tuples ever consumed.
  uint64_t tuples_seen() const { return seen_; }

 private:
  uint64_t window_size_;
  uint64_t seen_ = 0;
  uint64_t in_window_ = 0;
  uint64_t current_fill_ = 0;
  size_t current_ = 0;  // index of the window being filled
  std::vector<FagmsSketch> windows_;
  std::vector<uint64_t> window_fill_;
  FagmsSketch sum_;  // sum of all active windows
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_STREAM_WINDOW_H_
