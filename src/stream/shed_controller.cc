#include "src/stream/shed_controller.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/core/corrections.h"
#include "src/core/variance.h"
#include "src/util/metrics.h"

namespace sketchsample {

ShedController::ShedController(const ShedControllerOptions& options)
    : options_(options) {
  if (!(options.min_p > 0.0) || options.min_p > options.max_p ||
      options.max_p > 1.0) {
    throw std::invalid_argument(
        "shed controller needs 0 < min_p <= max_p <= 1");
  }
  if (options.initial_p < options.min_p ||
      options.initial_p > options.max_p) {
    throw std::invalid_argument("shed controller initial_p outside [min, max]");
  }
  if (options.window_tuples == 0) {
    throw std::invalid_argument("shed controller window_tuples must be > 0");
  }
  state_.p = options.initial_p;
}

double ShedController::OnWindow(uint64_t offered, uint64_t kept) {
  return OnWindow(offered, kept, options_.capacity_per_window);
}

double ShedController::OnWindow(uint64_t offered, uint64_t kept,
                                double capacity) {
  state_.windows += 1;
  state_.offered += offered;
  state_.kept += kept;
  // Monotone counters: the per-window realized rate accumulates in ppm so
  // sum/windows recovers the mean realized p from a metrics snapshot.
  SKETCHSAMPLE_METRIC_INC("stream.shed.windows");
  if (offered > 0) {
    SKETCHSAMPLE_METRIC_ADD(
        "stream.shed.realized_p",
        static_cast<uint64_t>(1e6 * static_cast<double>(kept) /
                              static_cast<double>(offered)));
  }
  if (capacity <= 0.0) return state_.p;

  // Backlog accounting: the sink drains `capacity` tuples per window; kept
  // tuples beyond that queue up and must be worked off before p may rise.
  state_.backlog =
      std::max(0.0, state_.backlog + static_cast<double>(kept) - capacity);

  const double kept_d = std::max(1.0, static_cast<double>(kept));
  if (static_cast<double>(kept) > capacity || state_.backlog > 0.0) {
    // Overload: proportional retarget so the *next* window's expected kept
    // count matches the budget (minus a drain allowance for the backlog),
    // reacting within one window instead of decaying geometrically.
    const double drain = std::min(state_.backlog, 0.5 * capacity);
    const double target = std::max(0.0, capacity - drain);
    state_.p = std::clamp(state_.p * target / kept_d, options_.min_p,
                          options_.max_p);
  } else if (static_cast<double>(kept) < options_.headroom * capacity &&
             state_.p < options_.max_p) {
    // Headroom: additive probe toward full rate.
    state_.p = std::min(options_.max_p, state_.p + options_.increase_step);
  }
  return state_.p;
}

double ShedController::RealizedRate() const {
  return state_.offered == 0 ? state_.p
                             : static_cast<double>(state_.kept) /
                                   static_cast<double>(state_.offered);
}

double RealizedSelfJoinEstimate(double raw, double realized_p,
                                uint64_t kept) {
  return BernoulliSelfJoinCorrection(realized_p, kept).Apply(raw);
}

double RealizedJoinEstimate(double raw, double realized_p,
                            double realized_q) {
  return BernoulliJoinCorrection(realized_p, realized_q).Apply(raw);
}

ConfidenceInterval RealizedSelfJoinInterval(double estimate,
                                            const JoinStatistics& stats,
                                            double realized_p, size_t n,
                                            double level) {
  const VarianceTerms terms =
      BernoulliSelfJoinVariance(stats, realized_p, n);
  return CltInterval(estimate, terms.Total(), level);
}

ConfidenceInterval RealizedJoinInterval(double estimate,
                                        const JoinStatistics& stats,
                                        double realized_p, double realized_q,
                                        size_t n, double level) {
  const VarianceTerms terms =
      BernoulliJoinVariance(stats, realized_p, realized_q, n);
  return CltInterval(estimate, terms.Total(), level);
}

}  // namespace sketchsample
