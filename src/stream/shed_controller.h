// Adaptive load shedding: closing the loop between measured throughput and
// the Bernoulli shed rate p.
//
// The paper's motivating scenario for sketching Bernoulli samples is load
// shedding (§VI-A): when the system cannot keep up, drop tuples at rate 1-p
// and answer with the provable error of Props 13/14 (Eqs 25/26). A fixed p
// assumes the operator knows the overload factor in advance; production
// systems do not (SALSA and friends adapt continuously). The ShedController
// closes the loop: the pipeline reports per-window (offered, kept) counts,
// the controller compares kept against the sink's capacity budget and
// retargets p — proportionally down under overload, additively up when
// headroom returns (AIMD-style, so rate recovery probes gently while
// overload reacts within one window).
//
// Honesty under adaptation: once p varies across windows, the nominal p is
// meaningless to the estimator. The controller records the realized counts;
// RealizedSelfJoinEstimate / RealizedJoinEstimate apply the Prop 13/14
// corrections at the realized rate p̂ = kept/offered, and
// RealizedSelfJoinInterval widens the confidence interval per Eq 26
// evaluated at p̂ — graceful degradation with honest error bars.
#ifndef SKETCHSAMPLE_STREAM_SHED_CONTROLLER_H_
#define SKETCHSAMPLE_STREAM_SHED_CONTROLLER_H_

#include <cstddef>
#include <cstdint>

#include "src/core/confidence.h"
#include "src/data/frequency_vector.h"

namespace sketchsample {

/// Tuning knobs for the adaptive controller.
struct ShedControllerOptions {
  /// Starting shed rate.
  double initial_p = 1.0;
  /// p is clamped to [min_p, max_p]. min_p > 0 keeps the estimator alive
  /// (p == 0 sheds everything and no correction can recover the answer).
  double min_p = 0.05;
  double max_p = 1.0;
  /// Kept-tuple budget per window the sink can absorb. Deterministic
  /// control signal — what the tests and checkpoint-exactness rely on.
  double capacity_per_window = 0.0;
  /// Wall-clock alternative: when capacity_per_window is 0 and this is set,
  /// the pipeline passes target_tps × measured-window-seconds as the
  /// capacity. Inherently nondeterministic; bit-exact resume is only
  /// guaranteed in the fixed-budget mode.
  double target_tps = 0.0;
  /// Probe p upward only when kept falls below headroom × capacity, so the
  /// controller does not oscillate around the budget.
  double headroom = 0.9;
  /// Additive step for upward probing.
  double increase_step = 0.05;
  /// Window length in tuples; the pipeline ticks OnWindow at multiples of
  /// this many offered tuples.
  uint64_t window_tuples = 8192;
};

/// Closed-loop controller over the shed rate. Deterministic: the next p is
/// a pure function of the observed counts, so replaying a stream replays
/// the exact p trajectory (which is what makes checkpoint resume bit-exact).
class ShedController {
 public:
  /// Serializable controller state for checkpoint/resume.
  struct State {
    double p = 1.0;
    double backlog = 0.0;
    uint64_t windows = 0;
    uint64_t offered = 0;
    uint64_t kept = 0;
  };

  explicit ShedController(const ShedControllerOptions& options);

  /// Reports one completed window using options.capacity_per_window as the
  /// sink budget. Returns the p to apply for the next window.
  double OnWindow(uint64_t offered, uint64_t kept);

  /// Reports one completed window against an explicit capacity (e.g.
  /// target_tps × measured window seconds for wall-clock control). A
  /// capacity <= 0 leaves p untouched (no signal, no reaction).
  double OnWindow(uint64_t offered, uint64_t kept, double capacity);

  double p() const { return state_.p; }
  uint64_t windows() const { return state_.windows; }
  uint64_t total_offered() const { return state_.offered; }
  uint64_t total_kept() const { return state_.kept; }
  /// Unserved kept-tuple backlog carried across windows (tuples the sink
  /// has admitted beyond its cumulative budget).
  double backlog() const { return state_.backlog; }
  /// Realized sampling rate over the whole run: kept/offered. Falls back to
  /// the current p before the first window closes.
  double RealizedRate() const;

  const ShedControllerOptions& options() const { return options_; }
  State SaveState() const { return state_; }
  void RestoreState(const State& state) { state_ = state; }

 private:
  ShedControllerOptions options_;
  State state_;
};

/// Prop 14 self-join correction applied at the realized rate:
///   X = raw/p̂² − (1−p̂)/p̂² · kept.
/// `raw` is the sketch's uncorrected self-join estimate of the kept stream.
double RealizedSelfJoinEstimate(double raw, double realized_p, uint64_t kept);

/// Prop 13 join correction at the realized rates: X = raw/(p̂·q̂).
double RealizedJoinEstimate(double raw, double realized_p,
                            double realized_q);

/// CLT confidence interval around an adaptive-run self-join estimate, with
/// the variance of Eq 26 (Prop 14) evaluated at the realized rate p̂ and n
/// averaged basic estimators (for F-AGMS, n = buckets). `stats` are the
/// moments of the original, pre-shedding frequency vector — known in
/// experiments, estimated in production.
ConfidenceInterval RealizedSelfJoinInterval(double estimate,
                                            const JoinStatistics& stats,
                                            double realized_p, size_t n,
                                            double level);

/// Same for the size-of-join estimate, with Eq 25 (Prop 13) variance.
ConfidenceInterval RealizedJoinInterval(double estimate,
                                        const JoinStatistics& stats,
                                        double realized_p, double realized_q,
                                        size_t n, double level);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_STREAM_SHED_CONTROLLER_H_
