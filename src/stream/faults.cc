#include "src/stream/faults.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "src/util/metrics.h"

namespace sketchsample {

bool FaultProfile::Active() const {
  return corrupt_prob > 0.0 || duplicate_prob > 0.0 || reorder_prob > 0.0 ||
         truncate_prob > 0.0 || stall_every > 0 || die_after > 0;
}

FaultProfile FaultProfile::FromName(const std::string& name) {
  FaultProfile profile;
  if (name == "none") return profile;
  if (name == "mild") {
    profile.corrupt_prob = 0.001;
    profile.duplicate_prob = 0.001;
    profile.stall_every = 100000;
    profile.stall_pulls = 3;
    return profile;
  }
  if (name == "harsh") {
    profile.corrupt_prob = 0.01;
    profile.duplicate_prob = 0.01;
    profile.reorder_prob = 0.01;
    profile.truncate_prob = 0.1;
    profile.stall_every = 20000;
    profile.stall_pulls = 10;
    return profile;
  }
  throw std::invalid_argument("unknown fault profile: " + name);
}

FaultInjectingSource::FaultInjectingSource(StreamSource* inner,
                                           const FaultProfile& profile,
                                           uint64_t seed)
    : inner_(inner), profile_(profile), rng_(seed) {
  next_stall_at_ = profile_.stall_every;
}

std::optional<uint64_t> FaultInjectingSource::Next() {
  uint64_t value = 0;
  return NextChunk(&value, 1) == 1 ? std::optional<uint64_t>(value)
                                   : std::nullopt;
}

size_t FaultInjectingSource::NextChunk(uint64_t* out, size_t max_n) {
  if (max_n == 0) return 0;
  if (dead_) {
    stalled_ = true;
    return 0;
  }
  // Positional faults fire before any data moves: a pending stall episode
  // yields zero-length "would block" pulls the pipeline must ride out.
  if (stall_left_ > 0) {
    --stall_left_;
    stalled_ = true;
    return 0;
  }
  if (profile_.stall_every > 0 && emitted_ >= next_stall_at_) {
    next_stall_at_ += profile_.stall_every;
    stall_left_ = profile_.stall_pulls;
    faults_ += 1;
    SKETCHSAMPLE_METRIC_INC("stream.faults.injected");
    if (stall_left_ > 0) {
      --stall_left_;
      stalled_ = true;
      return 0;
    }
  }
  stalled_ = false;
  const size_t n = PullChunk(out, max_n);
  if (n == 0 && (dead_ || inner_->Stalled())) stalled_ = true;
  return n;
}

size_t FaultInjectingSource::PullChunk(uint64_t* out, size_t max_n) {
  size_t budget = max_n;
  if (profile_.truncate_prob > 0.0 && budget > 1 &&
      rng_.NextDouble() < profile_.truncate_prob) {
    budget = 1 + static_cast<size_t>(
                     rng_.NextBounded(static_cast<uint64_t>(budget - 1)));
    faults_ += 1;
    SKETCHSAMPLE_METRIC_INC("stream.faults.injected");
  }

  size_t n = 0;
  // Duplication overflow from the previous pull goes out first.
  while (n < budget && !carry_.empty()) {
    out[n++] = carry_.front();
    carry_.erase(carry_.begin());
  }
  while (n < budget) {
    if (profile_.die_after > 0 && emitted_ + n >= profile_.die_after) {
      dead_ = true;
      faults_ += 1;
      SKETCHSAMPLE_METRIC_INC("stream.faults.injected");
      break;
    }
    const size_t got = inner_->NextChunk(out + n, 1);
    if (got == 0) break;
    uint64_t value = out[n];
    if (profile_.corrupt_prob > 0.0 &&
        rng_.NextDouble() < profile_.corrupt_prob) {
      value ^= rng_() & profile_.corrupt_mask;
      faults_ += 1;
      SKETCHSAMPLE_METRIC_INC("stream.faults.injected");
    }
    if (profile_.reorder_prob > 0.0 && n > 0 &&
        rng_.NextDouble() < profile_.reorder_prob) {
      std::swap(value, out[n - 1]);
      faults_ += 1;
      SKETCHSAMPLE_METRIC_INC("stream.faults.injected");
    }
    out[n++] = value;
    if (profile_.duplicate_prob > 0.0 &&
        rng_.NextDouble() < profile_.duplicate_prob) {
      faults_ += 1;
      SKETCHSAMPLE_METRIC_INC("stream.faults.injected");
      if (n < budget) {
        out[n++] = value;
      } else {
        carry_.push_back(value);
      }
    }
  }
  emitted_ += n;
  return n;
}

FaultInjectingOperator::FaultInjectingOperator(Operator* downstream,
                                               const FaultProfile& profile,
                                               uint64_t seed)
    : downstream_(downstream), profile_(profile), rng_(seed) {}

FaultInjectingOperator::FaultInjectingOperator(Operator* downstream,
                                               const FaultProfile& profile,
                                               uint64_t seed,
                                               std::string shard_label)
    : downstream_(downstream),
      profile_(profile),
      rng_(seed),
      shard_label_(std::move(shard_label)) {}

void FaultInjectingOperator::CountFault() {
  faults_ += 1;
  if (!metrics::Enabled()) return;
  // Per-instance counters cannot go through SKETCHSAMPLE_METRIC_* (its
  // function-local static would pin the first instance's label for every
  // later one), so resolve registry references directly and cache them in
  // the member, not in a static.
  if (total_counter_ == nullptr) {
    metrics::Registry& registry = metrics::Registry::Global();
    total_counter_ = &registry.GetCounter("stream.faults.injected");
    if (!shard_label_.empty()) {
      shard_counter_ =
          &registry.GetCounter("stream.faults.injected." + shard_label_);
    }
  }
  total_counter_->Add(1);
  if (shard_counter_ != nullptr) shard_counter_->Add(1);
}

void FaultInjectingOperator::OnTuple(uint64_t value) {
  if (profile_.corrupt_prob > 0.0 &&
      rng_.NextDouble() < profile_.corrupt_prob) {
    value ^= rng_() & profile_.corrupt_mask;
    CountFault();
  }
  downstream_->OnTuple(value);
  if (profile_.duplicate_prob > 0.0 &&
      rng_.NextDouble() < profile_.duplicate_prob) {
    CountFault();
    downstream_->OnTuple(value);
  }
}

void FaultInjectingOperator::OnTuples(const uint64_t* values, size_t n) {
  scratch_.clear();
  scratch_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t value = values[i];
    if (profile_.corrupt_prob > 0.0 &&
        rng_.NextDouble() < profile_.corrupt_prob) {
      value ^= rng_() & profile_.corrupt_mask;
      CountFault();
    }
    if (profile_.reorder_prob > 0.0 && !scratch_.empty() &&
        rng_.NextDouble() < profile_.reorder_prob) {
      std::swap(value, scratch_.back());
      CountFault();
    }
    scratch_.push_back(value);
    if (profile_.duplicate_prob > 0.0 &&
        rng_.NextDouble() < profile_.duplicate_prob) {
      scratch_.push_back(value);
      CountFault();
    }
  }
  if (!scratch_.empty()) downstream_->OnTuples(scratch_.data(), scratch_.size());
}

uint64_t FaultSeedFromEnv(uint64_t fallback) {
  const char* raw = std::getenv("SKETCHSAMPLE_FAULT_SEED");
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<uint64_t>(parsed);
}

}  // namespace sketchsample
