// Parallel sharded sketching (§VI-C: "on the modern multi-core processors,
// sketching can be done essentially for free").
//
// Sketches are linear, so a stream can be partitioned across worker threads
// that each maintain a private counter array, and the per-thread sketches
// Merge() into a result identical to serial sketching — bit-for-bit, since
// each tuple's contribution is an exact double increment and addition order
// only matters below the ulp level for integer-weight updates. The workers
// copy one master sketch, so the (read-only, thread-safe) ξ families and
// bucket hashes are seeded once and shared; only counters are private.
#ifndef SKETCHSAMPLE_STREAM_PARALLEL_H_
#define SKETCHSAMPLE_STREAM_PARALLEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/sketch/fagms.h"
#include "src/sketch/sketch.h"

namespace sketchsample {

/// Builds an F-AGMS sketch of `stream` using `num_threads` workers, each
/// sketching a contiguous chunk, then merging. `num_threads` == 0 or 1 runs
/// serially. The result equals BuildFagmsSketch(stream, params) exactly for
/// integer-weight updates.
FagmsSketch ParallelBuildFagms(const std::vector<uint64_t>& stream,
                               const SketchParams& params,
                               size_t num_threads);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_STREAM_PARALLEL_H_
