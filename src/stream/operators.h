// Stream operators: the processing stages of a pipeline.
//
// Operators receive tuples via OnTuple (one at a time) or OnTuples (a
// chunk), and may forward them to a downstream operator. The two stages the
// paper composes are a Bernoulli shedding stage in front of a sketching
// stage (§VI-A). The batch entry points exist because per-tuple virtual
// dispatch (plus a std::function call in the sink) dominates the very
// quantity §VI-A measures — per-tuple sketch-update cost — once the sketch
// kernels themselves are batched.
#ifndef SKETCHSAMPLE_STREAM_OPERATORS_H_
#define SKETCHSAMPLE_STREAM_OPERATORS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "src/sampling/bernoulli.h"
#include "src/util/rng.h"

namespace sketchsample {

/// Push-based operator interface.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Consumes one tuple.
  virtual void OnTuple(uint64_t value) = 0;

  /// Consumes a chunk of tuples. The default forwards tuple-at-a-time to
  /// OnTuple, so existing scalar operators work unchanged inside a chunked
  /// pipeline; hot operators override it to process whole chunks.
  virtual void OnTuples(const uint64_t* values, size_t n) {
    for (size_t i = 0; i < n; ++i) OnTuple(values[i]);
  }

  /// Signals end of stream (default: no-op).
  virtual void OnEnd() {}
};

/// Serializable shed-stage state: the sampling rate, the pending skip gap,
/// both sampler RNG states, and the realized counts. Captured/restored by
/// the checkpoint layer (src/stream/checkpoint.h) so a resumed pipeline
/// continues the exact coin/skip sequence of the interrupted one.
struct ShedOperatorState {
  double p = 1.0;
  uint64_t skip = 0;
  uint64_t seen = 0;
  uint64_t forwarded = 0;
  bool has_skipper = false;
  Xoshiro256::State coin_rng{};
  Xoshiro256::State skip_rng{};
};

/// Load-shedding stage: forwards each tuple with probability p.
///
/// The scalar path flips one Bernoulli coin per tuple; the batch path uses
/// geometric skips (Olken, ref [18]) to jump straight between kept tuples,
/// compacting them into one contiguous chunk before forwarding — work
/// proportional to the number of *kept* tuples. Both paths sample the exact
/// Bernoulli(p) law but consume independent randomness, so mixing them
/// yields a different (equally valid) sample realization.
///
/// The rate is adjustable mid-stream (SetP) so a ShedController can close
/// the loop between measured throughput and p; the realized kept/dropped
/// counts (not the nominal p) are what estimators must scale by after an
/// adaptive run.
class ShedOperator final : public Operator {
 public:
  ShedOperator(double p, uint64_t seed, Operator* downstream)
      : sampler_(p, seed),
        skip_seed_(seed ^ 0x9e3779b97f4a7c15ULL),
        downstream_(downstream) {
    if (p > 0.0) {
      skipper_.emplace(p, skip_seed_);
      skip_ = skipper_->NextSkip();
    }
  }

  void OnTuple(uint64_t value) override {
    ++seen_;
    if (sampler_.Keep()) {
      ++forwarded_;
      downstream_->OnTuple(value);
    }
  }

  void OnTuples(const uint64_t* values, size_t n) override {
    seen_ += n;
    if (!skipper_) return;  // p == 0: shed everything
    if (sampler_.p() >= 1.0) {  // p == 1: forward the chunk untouched
      forwarded_ += n;
      downstream_->OnTuples(values, n);
      return;
    }
    kept_.clear();
    size_t pos = 0;
    while (pos < n) {
      const uint64_t remaining = n - pos;
      if (skip_ >= remaining) {  // rest of the chunk is shed; carry over
        skip_ -= remaining;
        break;
      }
      pos += static_cast<size_t>(skip_);
      kept_.push_back(values[pos]);
      ++pos;
      skip_ = skipper_->NextSkip();
    }
    forwarded_ += kept_.size();
    if (!kept_.empty()) downstream_->OnTuples(kept_.data(), kept_.size());
  }

  void OnEnd() override { downstream_->OnEnd(); }

  /// Retargets the shed rate. Applies to tuples arriving after the call:
  /// the coin path keeps them with the new p, and the skip path re-draws
  /// its pending gap under the new rate (the old gap's law no longer
  /// matches). Counts are not reset — realized_rate() spans rate changes,
  /// which is exactly what the adaptive estimator needs.
  void SetP(double p) {
    sampler_.SetP(p);
    if (p <= 0.0) {
      skipper_.reset();
      skip_ = 0;
      return;
    }
    if (skipper_) {
      skipper_->SetP(p);
    } else {
      skipper_.emplace(p, skip_seed_);
    }
    skip_ = skipper_->NextSkip();
  }

  uint64_t seen() const { return seen_; }
  uint64_t forwarded() const { return forwarded_; }
  uint64_t dropped() const { return seen_ - forwarded_; }
  double p() const { return sampler_.p(); }
  /// The effective sampling rate actually realized over the run so far:
  /// forwarded/seen. Falls back to the nominal p before any tuple arrives.
  double realized_rate() const {
    return seen_ == 0 ? sampler_.p()
                      : static_cast<double>(forwarded_) /
                            static_cast<double>(seen_);
  }

  ShedOperatorState SaveState() const {
    ShedOperatorState state;
    state.p = sampler_.p();
    state.skip = skip_;
    state.seen = seen_;
    state.forwarded = forwarded_;
    state.has_skipper = skipper_.has_value();
    state.coin_rng = sampler_.SaveRngState();
    if (skipper_) state.skip_rng = skipper_->SaveRngState();
    return state;
  }

  void RestoreState(const ShedOperatorState& state) {
    sampler_.SetP(state.p);
    sampler_.RestoreRngState(state.coin_rng);
    if (state.has_skipper) {
      if (!skipper_) skipper_.emplace(state.p, skip_seed_);
      skipper_->SetP(state.p);
      skipper_->RestoreRngState(state.skip_rng);
    } else {
      skipper_.reset();
    }
    skip_ = state.skip;
    seen_ = state.seen;
    forwarded_ = state.forwarded;
  }

 private:
  BernoulliSampler sampler_;                     // scalar path
  std::optional<GeometricSkipSampler> skipper_;  // batch path (unset: p == 0)
  uint64_t skip_ = 0;  // tuples still to shed before the next kept one
  uint64_t skip_seed_;  // retained so SetP can revive a p==0 skipper
  Operator* downstream_;
  std::vector<uint64_t> kept_;  // batch-path compaction scratch
  uint64_t seen_ = 0;
  uint64_t forwarded_ = 0;
};

/// Terminal stage feeding any sketch (or other consumer) through a
/// callback. Two flavors: a per-tuple callback (type-erased, one
/// std::function call per tuple) and a batch callback invoked once per
/// chunk, which removes per-tuple std::function dispatch from the hot path
/// entirely — see MakeSketchSink below.
class SinkOperator final : public Operator {
 public:
  // Scalar-compat sink; hot pipelines use the batch constructor below.
  // lint:allow(hot-path-std-function): one call per tuple by request only
  explicit SinkOperator(std::function<void(uint64_t)> consume)
      : consume_(std::move(consume)) {}
  // Invoked once per chunk; per-tuple dispatch is devirtualized inside
  // the sketch's UpdateBatch kernel.
  // lint:allow(hot-path-std-function): per-chunk cost, not per-tuple
  explicit SinkOperator(std::function<void(const uint64_t*, size_t)> batch)
      : batch_(std::move(batch)) {}

  void OnTuple(uint64_t value) override {
    ++count_;
    if (consume_) {
      consume_(value);
    } else {
      batch_(&value, 1);
    }
  }

  void OnTuples(const uint64_t* values, size_t n) override {
    count_ += n;
    if (batch_) {
      batch_(values, n);
    } else {
      for (size_t i = 0; i < n; ++i) consume_(values[i]);
    }
  }

  uint64_t count() const { return count_; }

 private:
  // lint:allow(hot-path-std-function): see the constructors above
  std::function<void(uint64_t)> consume_;
  // lint:allow(hot-path-std-function): see the constructors above
  std::function<void(const uint64_t*, size_t)> batch_;
  uint64_t count_ = 0;
};

/// Builds a batch sink that feeds `sketch` through its UpdateBatch kernel:
/// one indirect call per chunk, then devirtualized block kernels inside the
/// sketch. `sketch` must outlive the returned operator.
template <typename SketchT>
SinkOperator MakeSketchSink(SketchT& sketch) {
  return SinkOperator([&sketch](const uint64_t* keys, size_t n) {
    sketch.UpdateBatch(keys, n);
  });
}

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_STREAM_OPERATORS_H_
