// Stream operators: the processing stages of a pipeline.
//
// Operators receive tuples via OnTuple and may forward them to a downstream
// operator. The two stages the paper composes are a Bernoulli shedding
// stage in front of a sketching stage (§VI-A).
#ifndef SKETCHSAMPLE_STREAM_OPERATORS_H_
#define SKETCHSAMPLE_STREAM_OPERATORS_H_

#include <cstdint>
#include <functional>

#include "src/sampling/bernoulli.h"

namespace sketchsample {

/// Push-based operator interface.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Consumes one tuple.
  virtual void OnTuple(uint64_t value) = 0;

  /// Signals end of stream (default: no-op).
  virtual void OnEnd() {}
};

/// Load-shedding stage: forwards each tuple with probability p.
class ShedOperator final : public Operator {
 public:
  ShedOperator(double p, uint64_t seed, Operator* downstream)
      : sampler_(p, seed), downstream_(downstream) {}

  void OnTuple(uint64_t value) override {
    ++seen_;
    if (sampler_.Keep()) {
      ++forwarded_;
      downstream_->OnTuple(value);
    }
  }

  void OnEnd() override { downstream_->OnEnd(); }

  uint64_t seen() const { return seen_; }
  uint64_t forwarded() const { return forwarded_; }

 private:
  BernoulliSampler sampler_;
  Operator* downstream_;
  uint64_t seen_ = 0;
  uint64_t forwarded_ = 0;
};

/// Terminal stage feeding any sketch (or other consumer) through a callback.
/// Using std::function keeps the pipeline type-erased; the hot benches drive
/// sketches directly instead.
class SinkOperator final : public Operator {
 public:
  explicit SinkOperator(std::function<void(uint64_t)> consume)
      : consume_(std::move(consume)) {}

  void OnTuple(uint64_t value) override {
    ++count_;
    consume_(value);
  }

  uint64_t count() const { return count_; }

 private:
  std::function<void(uint64_t)> consume_;
  uint64_t count_ = 0;
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_STREAM_OPERATORS_H_
