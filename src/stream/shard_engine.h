// Sharded multi-threaded ingest engine: the multi-core counterpart of
// RunPipeline (src/stream/pipeline.h).
//
// Topology: one router thread pulls NextChunk batches from the source and
// deals them round-robin across N worker lanes, each lane a pair of bounded
// SPSC rings (src/util/spsc_queue.h) — a work ring carrying filled chunks
// and a free ring recycling their buffers, so the steady state allocates
// nothing. Each worker sheds tuples with the stateless positional Bernoulli
// sampler (src/sampling/bernoulli.h), feeds survivors into its own partial
// sketch (a copy of the prototype; copies share the immutable ξ/hash
// state), and a final merge stage folds the partials through the sketches'
// Merge path.
//
// Determinism at any shard count: the shed decision for the tuple at
// absolute position i is a pure function of (root seed, i, p), so every
// routing of the stream across shards keeps exactly the same tuples; and
// because integer-weight sketch counters are exact sums of per-tuple
// contributions, the merged counters are bit-identical no matter how the
// stream was partitioned. Same root seed at 1, 2, 3, or 8 shards → the
// same merged estimate to the last bit (the determinism test matrix
// asserts this).
//
// Backpressure: when a lane has no free buffer, the router spins (yield)
// and counts the event; with ring_backpressure set, the congested fraction
// of the window discounts the capacity handed to the ShedController, so a
// full ring reads as "the sink cannot keep up" and shedding stays honest
// under overload. (The discount follows real scheduling, so adaptive runs
// with engaged backpressure are not bit-reproducible; disable it or run a
// fixed p where exact replay matters.)
//
// Checkpoint/recovery: at quiesced chunk boundaries (router waits until
// every routed chunk is processed) the engine snapshots per-shard state —
// realized counts plus each partial sketch — into the pipeline checkpoint's
// shard section (src/stream/checkpoint.h, flag bit 2). Restore merges all
// shard partials into the engine's base sketch, so a kill-and-resume is
// bit-exact even when the resumed engine runs a different shard count. The
// positional sampler is stateless, so no RNG state needs checkpointing.
#ifndef SKETCHSAMPLE_STREAM_SHARD_ENGINE_H_
#define SKETCHSAMPLE_STREAM_SHARD_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/stream/checkpoint.h"
#include "src/stream/faults.h"
#include "src/stream/pipeline.h"
#include "src/stream/shed_controller.h"
#include "src/stream/source.h"

namespace sketchsample {

/// Configuration for one ShardEngine.
struct ShardEngineOptions {
  /// Worker lanes. 1 reproduces the single-shard pipeline (still through
  /// the ring, so the code path is identical).
  size_t shards = 1;
  /// Tuples per routed chunk.
  size_t chunk_tuples = kPipelineChunk;
  /// Chunk buffers per lane (ring capacity; rounded up to a power of two).
  /// A lane with no free buffer is backpressure.
  size_t queue_chunks = 8;
  /// Initial keep-probability for the positional shed stage.
  double shed_p = 1.0;
  /// Root seed: drives the positional sampler and all per-shard derived
  /// streams (MixSeed splits), so every run is a function of this value.
  uint64_t seed = 0;
  /// Adaptive shedding: when set, ticked every options().window_tuples
  /// routed tuples with the realized (offered, kept) deltas, exactly like
  /// RunPipeline.
  ShedController* controller = nullptr;
  /// Feed ring congestion into the controller's capacity signal (see file
  /// comment). Only meaningful with a controller.
  bool ring_backpressure = true;
  /// Stop after this many tuples this run (0 = run to end of stream).
  uint64_t max_tuples = 0;
  /// Zero-length pulls to ride out while the source stalls (as RunPipeline).
  uint64_t stall_retries = 64;
  /// Checkpointing: every checkpoint_every tuples (at the next quiesced
  /// chunk boundary), snapshot per-shard state into checkpoint_sink.
  CheckpointSink* checkpoint_sink = nullptr;
  uint64_t checkpoint_every = 0;
  /// Per-worker push-path fault injection (corrupt/duplicate/reorder after
  /// the shed stage). Each worker gets an independent MixSeed(fault_seed,
  /// shard) fault stream and a per-shard metric label, so
  /// stream.faults.injected stays the exact sum of the per-shard counters.
  const FaultProfile* fault_profile = nullptr;
  uint64_t fault_seed = 0;
  /// Auxiliary distinct counting: when > 0 every worker lane keeps a
  /// KmvSketch(distinct_k, ShardDistinctSeed(seed)) over exactly the tuples
  /// surviving the positional shed (before fault injection, so the count
  /// describes the sampled stream, not the corrupted one). Partials merge
  /// like the primary sketch — same seed at any shard count gives the same
  /// union — and ride in checkpoint flag-bit-3 blobs.
  size_t distinct_k = 0;
  /// Quantile queries: when > 0 the engine maintains one KllSketch
  /// (quantile_k, ShardQuantileSeed(seed)) over the kept stream. KLL
  /// compaction is order-dependent, so per-lane partials would NOT be
  /// bit-exact across shard counts; instead each lane buffers its kept
  /// (position, value) pairs and the router folds them into the single
  /// engine-level sketch in ascending position order at quiesced
  /// boundaries. The KLL state is then a pure function of the kept prefix
  /// in stream order — identical at any shard count, chunking, or resume.
  size_t quantile_k = 0;
  /// Fold cadence for the quantile buffers (tuples; phase-locked to
  /// absolute stream offsets like windows). Bounds per-lane buffer memory;
  /// the fold boundary itself has no effect on the final sketch state.
  uint64_t quantile_fold_every = 65536;
  /// Subpopulation queries: when > 0 every worker lane keeps a
  /// KeyedKmvSketch(subpop_k, ShardSubpopSeed(seed)) over the tuples
  /// surviving the positional shed (before fault injection, like
  /// distinct_k). Keyed bottom-k merges are exact (see src/sketch/kmv.h),
  /// so partials union bit-exactly at any shard count and ride in
  /// checkpoint flag-bit-4 blobs.
  size_t subpop_k = 0;
};

/// Hash seed of the auxiliary distinct counter, derived deterministically
/// from the engine's root seed so an offline run reproduces the service's
/// KMV bit-for-bit from configuration alone.
uint64_t ShardDistinctSeed(uint64_t root_seed);
/// Compaction-coin seed of the engine-level KLL quantile sketch (same
/// derivation discipline as ShardDistinctSeed).
uint64_t ShardQuantileSeed(uint64_t root_seed);
/// Hash seed of the per-lane keyed-KMV subpopulation sketches.
uint64_t ShardSubpopSeed(uint64_t root_seed);

/// One consistent engine snapshot, published at a quiesced chunk boundary:
/// everything a query needs — the merged sketch over the kept prefix, the
/// optional distinct counter, and the realized counts the Prop 13/14
/// corrections scale by. Self-contained by value: readers on other threads
/// must never chase pointers into the live engine.
template <typename SketchT>
struct ShardEngineSnapshot {
  SketchT sketch;                      ///< base + every lane partial, merged
  std::optional<KmvSketch> distinct;   ///< set iff options.distinct_k > 0
  std::optional<KllSketch> quantile;   ///< set iff options.quantile_k > 0
  std::optional<KeyedKmvSketch> subpop;  ///< set iff options.subpop_k > 0
  uint64_t position = 0;  ///< absolute stream offset the snapshot covers
  uint64_t kept = 0;      ///< tuples surviving the shed up to `position`
  double p = 1.0;         ///< shed rate in force when the snapshot was cut
  uint64_t sequence = 0;  ///< 1-based publication counter
};

/// Receives engine snapshots. Publish is called on the router thread (the
/// engine's single writer) while all lanes are quiesced; implementations
/// hand the value off to readers (src/service/snapshot.h) and must not
/// block for long — ingest is stalled meanwhile.
template <typename SketchT>
class ShardSnapshotHook {
 public:
  virtual ~ShardSnapshotHook() = default;
  virtual void Publish(ShardEngineSnapshot<SketchT> snapshot) = 0;
};

/// Result of one ShardEngine::Run.
struct ShardEngineStats {
  uint64_t tuples = 0;       ///< tuples routed this run
  uint64_t chunks = 0;       ///< chunks routed this run
  uint64_t kept = 0;         ///< tuples surviving the shed stage this run
  double seconds = 0;        ///< wall-clock time of the run
  uint64_t stall_retries = 0;  ///< zero-length pulls ridden out
  bool stalled = false;      ///< source died / stall budget exhausted
  bool ended = false;        ///< source reported clean end of stream
  uint64_t windows = 0;      ///< controller windows closed
  uint64_t checkpoints = 0;  ///< checkpoints written
  uint64_t snapshots = 0;    ///< snapshots published to the hook
  double final_p = 1.0;      ///< shed rate when the run stopped
  uint64_t ring_full_retries = 0;  ///< router spins waiting for a buffer
  uint64_t quiesces = 0;     ///< router drain barriers (windows/checkpoints)
  uint64_t merges = 0;       ///< partials folded by the merge stage
  uint64_t quantile_folds = 0;  ///< position-ordered folds into the KLL
  std::vector<uint64_t> shard_tuples;  ///< per-shard tuples received
  std::vector<uint64_t> shard_kept;    ///< per-shard tuples kept
  std::vector<uint64_t> shard_faults;  ///< per-shard injected faults
  double TuplesPerSecond() const {
    return seconds > 0 ? static_cast<double>(tuples) / seconds : 0.0;
  }
};

/// N-worker sharded ingest engine over any mergeable sketch. One-shot by
/// design but re-runnable: a second Run continues from the merged state at
/// the position where the first stopped (same semantics as resuming from a
/// checkpoint taken at that boundary).
template <typename SketchT>
class ShardEngine {
 public:
  /// `prototype` fixes the sketch configuration; every worker partial and
  /// the merged result are copies of it (sharing immutable ξ/hash state).
  ShardEngine(const SketchT& prototype, const ShardEngineOptions& options);
  ~ShardEngine();

  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  /// Restores engine state from a shard-section checkpoint: merges every
  /// shard partial into the base sketch, restores the shed rate and
  /// realized counts, restores the controller (when both the checkpoint
  /// and options carry one), and fast-forwards `source` past the
  /// checkpointed position. Throws CheckpointError when the checkpoint has
  /// no shard section, holds an incompatible sketch, or the source ends
  /// before the checkpointed position. The restored engine may run any
  /// shard count — resume stays bit-exact.
  void Restore(const PipelineCheckpoint& cp, StreamSource& source);

  /// Pumps `source` dry (or to max_tuples / stall death): routes chunks to
  /// the workers, ticks the controller at window boundaries, writes
  /// checkpoints, then joins the workers and merges their partials.
  ShardEngineStats Run(StreamSource& source);

  /// The merged sketch: restored base plus every partial folded in. Valid
  /// after Run (before the first Run: just the restored/prototype state).
  const SketchT& merged() const { return merged_; }

  /// Current keep-probability of the positional shed stage.
  double p() const { return p_; }
  /// Realized totals across restores and runs — what the Prop 13/14
  /// corrections scale by.
  uint64_t total_seen() const { return total_seen_; }
  uint64_t total_kept() const { return total_kept_; }

  /// The merged auxiliary distinct counter (set iff options.distinct_k > 0);
  /// same validity window as merged().
  const std::optional<KmvSketch>& distinct() const { return distinct_; }

  /// The engine-level KLL quantile sketch (set iff options.quantile_k > 0),
  /// fed with the kept stream in position order; same validity window as
  /// merged().
  const std::optional<KllSketch>& quantile() const { return quantile_; }

  /// The merged keyed-KMV subpopulation sketch (set iff
  /// options.subpop_k > 0); same validity window as merged().
  const std::optional<KeyedKmvSketch>& subpop() const { return subpop_; }

  /// Registers a snapshot consumer: every `every_tuples` routed tuples (at
  /// the next quiesced chunk boundary, phase-locked to absolute stream
  /// offsets exactly like windows and checkpoints) plus once when Run
  /// stops, the engine publishes a ShardEngineSnapshot. Pass nullptr to
  /// detach. Call only between runs — the hook is read by the router
  /// thread.
  void SetSnapshotHook(ShardSnapshotHook<SketchT>* hook,
                       uint64_t every_tuples);

 private:
  struct Lane;  // worker lane: rings, thread, partial sketch (shard_engine.cc)

  // Builds one checkpoint at absolute position `total` from quiesced lanes.
  void WriteCheckpoint(const std::vector<std::unique_ptr<Lane>>& lanes,
                       uint64_t total, ShardEngineStats& stats) const;

  // Builds one snapshot at absolute position `total` from quiesced lanes
  // and hands it to the hook.
  void PublishSnapshot(const std::vector<std::unique_ptr<Lane>>& lanes,
                       uint64_t total, ShardEngineStats& stats);

  // Drains every lane's buffered (position, value) pairs into the
  // engine-level KLL in ascending position order. Lanes must be quiesced
  // (or joined). No-op when quantile queries are disabled.
  void FoldQuantile(const std::vector<std::unique_ptr<Lane>>& lanes,
                    ShardEngineStats& stats);

  ShardEngineOptions options_;
  SketchT proto_;    // clean prototype for worker partials
  SketchT merged_;   // restored base, then the final merged result
  double p_;
  uint64_t initial_tuples_ = 0;  // absolute position Run continues from
  uint64_t total_seen_ = 0;
  uint64_t total_kept_ = 0;
  // Auxiliary distinct counter: restored base + folded lane partials
  // (mirrors merged_). Engaged iff options.distinct_k > 0.
  std::optional<KmvSketch> distinct_;
  // Engine-level quantile sketch, fed in position order by FoldQuantile.
  // Engaged iff options.quantile_k > 0.
  std::optional<KllSketch> quantile_;
  // Keyed-KMV subpopulation sketch: restored base + folded lane partials
  // (mirrors distinct_). Engaged iff options.subpop_k > 0.
  std::optional<KeyedKmvSketch> subpop_;
  ShardSnapshotHook<SketchT>* snapshot_hook_ = nullptr;
  uint64_t snapshot_every_ = 0;
  uint64_t snapshot_sequence_ = 0;
};

extern template class ShardEngine<AgmsSketch>;
extern template class ShardEngine<FagmsSketch>;
extern template class ShardEngine<CountMinSketch>;
extern template class ShardEngine<FastCountSketch>;
extern template class ShardEngine<KmvSketch>;

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_STREAM_SHARD_ENGINE_H_
