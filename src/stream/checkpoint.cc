#include "src/stream/checkpoint.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <type_traits>
#include <utility>

#include "src/util/crc32.h"
#include "src/util/metrics.h"

namespace sketchsample {

namespace {

constexpr uint8_t kMagic[4] = {'S', 'K', 'C', 'P'};
constexpr uint32_t kVersion = 1;
constexpr uint8_t kFlagShed = 1u << 0;
constexpr uint8_t kFlagController = 1u << 1;
constexpr uint8_t kFlagShards = 1u << 2;
constexpr uint8_t kFlagShardDistinct = 1u << 3;
constexpr uint8_t kFlagQuantileSubpop = 1u << 4;

// Sanity bound on the declared shard count: far above any real engine
// (worker threads), low enough that a hostile count cannot drive a huge
// allocation before the per-shard length checks run.
constexpr uint64_t kMaxCheckpointShards = 1u << 16;

class Writer {
 public:
  template <typename T>
  void Put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t offset = bytes_.size();
    bytes_.resize(offset + sizeof(T));
    std::memcpy(bytes_.data() + offset, &value, sizeof(T));
  }

  void PutBytes(const std::vector<uint8_t>& blob) {
    bytes_.insert(bytes_.end(), blob.begin(), blob.end());
  }

  std::vector<uint8_t> Finish() {
    Put(Crc32(bytes_.data(), bytes_.size()));
    return std::move(bytes_);
  }

 private:
  std::vector<uint8_t> bytes_;
};

class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {
    if (bytes.size() < sizeof(kMagic) + sizeof(uint32_t) * 2) {
      throw CheckpointError("checkpoint buffer too small");
    }
    uint32_t stored;
    std::memcpy(&stored, bytes.data() + bytes.size() - sizeof(stored),
                sizeof(stored));
    if (Crc32(bytes.data(), bytes.size() - sizeof(stored)) != stored) {
      throw CheckpointError("checkpoint CRC32 mismatch");
    }
    end_ = bytes.size() - sizeof(stored);
  }

  template <typename T>
  T Get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (end_ - pos_ < sizeof(T)) {
      throw CheckpointError("checkpoint buffer truncated");
    }
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::vector<uint8_t> GetBytes(uint64_t count) {
    if (count > end_ - pos_) {
      throw CheckpointError("checkpoint blob length exceeds buffer");
    }
    std::vector<uint8_t> blob(bytes_.begin() + static_cast<ptrdiff_t>(pos_),
                              bytes_.begin() +
                                  static_cast<ptrdiff_t>(pos_ + count));
    pos_ += static_cast<size_t>(count);
    return blob;
  }

  void ExpectConsumed() const {
    if (pos_ != end_) {
      throw CheckpointError("checkpoint buffer has trailing bytes");
    }
  }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t pos_ = 0;
  size_t end_ = 0;
};

void PutRngState(Writer& writer, const Xoshiro256::State& state) {
  for (uint64_t word : state) writer.Put(word);
}

Xoshiro256::State GetRngState(Reader& reader) {
  Xoshiro256::State state{};
  for (auto& word : state) word = reader.Get<uint64_t>();
  return state;
}

double GetProbability(Reader& reader, const char* what) {
  const double p = reader.Get<double>();
  if (!std::isfinite(p) || p < 0.0 || p > 1.0) {
    throw CheckpointError(std::string("checkpoint holds invalid ") + what);
  }
  return p;
}

}  // namespace

std::vector<uint8_t> SerializeCheckpoint(const PipelineCheckpoint& cp) {
  Writer writer;
  for (uint8_t b : kMagic) writer.Put(b);
  writer.Put(kVersion);
  writer.Put(cp.source_tuples);
  uint8_t flags = 0;
  if (cp.has_shed) flags |= kFlagShed;
  if (cp.has_controller) flags |= kFlagController;
  if (cp.has_shards) flags |= kFlagShards;
  if (cp.has_shard_distinct) {
    if (!cp.has_shards) {
      throw CheckpointError(
          "checkpoint distinct blobs require a shard section");
    }
    flags |= kFlagShardDistinct;
  }
  if (cp.has_quantile_subpop) {
    if (!cp.has_shards) {
      throw CheckpointError(
          "checkpoint quantile/subpop section requires a shard section");
    }
    flags |= kFlagQuantileSubpop;
  }
  writer.Put(flags);
  if (cp.has_shed) {
    writer.Put(cp.shed.p);
    writer.Put(cp.shed.skip);
    writer.Put(cp.shed.seen);
    writer.Put(cp.shed.forwarded);
    writer.Put(static_cast<uint8_t>(cp.shed.has_skipper ? 1 : 0));
    PutRngState(writer, cp.shed.coin_rng);
    PutRngState(writer, cp.shed.skip_rng);
  }
  if (cp.has_controller) {
    writer.Put(cp.controller.p);
    writer.Put(cp.controller.backlog);
    writer.Put(cp.controller.windows);
    writer.Put(cp.controller.offered);
    writer.Put(cp.controller.kept);
  }
  if (cp.has_shards) {
    writer.Put(cp.shard_p);
    writer.Put(static_cast<uint64_t>(cp.shards.size()));
    for (const ShardCheckpointState& shard : cp.shards) {
      writer.Put(shard.seen);
      writer.Put(shard.kept);
      writer.Put(static_cast<uint64_t>(shard.sketch.size()));
      writer.PutBytes(shard.sketch);
      if (cp.has_shard_distinct) {
        writer.Put(static_cast<uint64_t>(shard.distinct.size()));
        writer.PutBytes(shard.distinct);
      }
    }
  }
  if (cp.has_quantile_subpop) {
    writer.Put(static_cast<uint64_t>(cp.quantile.size()));
    writer.PutBytes(cp.quantile);
    const uint64_t subpop_count =
        cp.has_shard_subpop ? static_cast<uint64_t>(cp.shards.size()) : 0;
    writer.Put(subpop_count);
    if (cp.has_shard_subpop) {
      for (const ShardCheckpointState& shard : cp.shards) {
        writer.Put(static_cast<uint64_t>(shard.subpop.size()));
        writer.PutBytes(shard.subpop);
      }
    }
  }
  writer.Put(static_cast<uint64_t>(cp.sketch.size()));
  writer.PutBytes(cp.sketch);
  std::vector<uint8_t> bytes = writer.Finish();
  SKETCHSAMPLE_METRIC_INC("stream.checkpoint.writes");
  SKETCHSAMPLE_METRIC_ADD("stream.checkpoint.bytes", bytes.size());
  return bytes;
}

PipelineCheckpoint DeserializeCheckpoint(const std::vector<uint8_t>& bytes) {
  Reader reader(bytes);
  for (uint8_t expected : kMagic) {
    if (reader.Get<uint8_t>() != expected) {
      throw CheckpointError("not a checkpoint buffer (bad magic)");
    }
  }
  const uint32_t version = reader.Get<uint32_t>();
  if (version != kVersion) {
    throw CheckpointError("unsupported checkpoint format version");
  }
  PipelineCheckpoint cp;
  cp.source_tuples = reader.Get<uint64_t>();
  const uint8_t flags = reader.Get<uint8_t>();
  if ((flags & ~(kFlagShed | kFlagController | kFlagShards |
                 kFlagShardDistinct | kFlagQuantileSubpop)) != 0) {
    throw CheckpointError("checkpoint has unknown flag bits");
  }
  if ((flags & kFlagShardDistinct) != 0 && (flags & kFlagShards) == 0) {
    throw CheckpointError(
        "checkpoint distinct flag set without a shard section");
  }
  if ((flags & kFlagQuantileSubpop) != 0 && (flags & kFlagShards) == 0) {
    throw CheckpointError(
        "checkpoint quantile/subpop flag set without a shard section");
  }
  if ((flags & kFlagShed) != 0) {
    cp.has_shed = true;
    cp.shed.p = GetProbability(reader, "shed rate");
    cp.shed.skip = reader.Get<uint64_t>();
    cp.shed.seen = reader.Get<uint64_t>();
    cp.shed.forwarded = reader.Get<uint64_t>();
    if (cp.shed.forwarded > cp.shed.seen) {
      throw CheckpointError("checkpoint shed counts inconsistent");
    }
    const uint8_t has_skipper = reader.Get<uint8_t>();
    if (has_skipper > 1) {
      throw CheckpointError("checkpoint shed skipper flag invalid");
    }
    cp.shed.has_skipper = has_skipper == 1;
    if (cp.shed.has_skipper && cp.shed.p <= 0.0) {
      throw CheckpointError("checkpoint shed skipper requires p > 0");
    }
    cp.shed.coin_rng = GetRngState(reader);
    cp.shed.skip_rng = GetRngState(reader);
  }
  if ((flags & kFlagController) != 0) {
    cp.has_controller = true;
    cp.controller.p = GetProbability(reader, "controller rate");
    cp.controller.backlog = reader.Get<double>();
    if (!std::isfinite(cp.controller.backlog) || cp.controller.backlog < 0) {
      throw CheckpointError("checkpoint holds invalid controller backlog");
    }
    cp.controller.windows = reader.Get<uint64_t>();
    cp.controller.offered = reader.Get<uint64_t>();
    cp.controller.kept = reader.Get<uint64_t>();
    if (cp.controller.kept > cp.controller.offered) {
      throw CheckpointError("checkpoint controller counts inconsistent");
    }
  }
  if ((flags & kFlagShards) != 0) {
    cp.has_shards = true;
    cp.shard_p = GetProbability(reader, "shard shed rate");
    const uint64_t shard_count = reader.Get<uint64_t>();
    if (shard_count == 0 || shard_count > kMaxCheckpointShards) {
      throw CheckpointError("checkpoint declares invalid shard count");
    }
    cp.shards.reserve(static_cast<size_t>(shard_count));
    for (uint64_t i = 0; i < shard_count; ++i) {
      ShardCheckpointState shard;
      shard.seen = reader.Get<uint64_t>();
      shard.kept = reader.Get<uint64_t>();
      if (shard.kept > shard.seen) {
        throw CheckpointError("checkpoint shard counts inconsistent");
      }
      const uint64_t blob_len = reader.Get<uint64_t>();
      shard.sketch = reader.GetBytes(blob_len);
      if ((flags & kFlagShardDistinct) != 0) {
        cp.has_shard_distinct = true;
        const uint64_t distinct_len = reader.Get<uint64_t>();
        shard.distinct = reader.GetBytes(distinct_len);
      }
      cp.shards.push_back(std::move(shard));
    }
  }
  if ((flags & kFlagQuantileSubpop) != 0) {
    cp.has_quantile_subpop = true;
    const uint64_t kll_len = reader.Get<uint64_t>();
    cp.quantile = reader.GetBytes(kll_len);
    const uint64_t subpop_count = reader.Get<uint64_t>();
    if (subpop_count != 0 && subpop_count != cp.shards.size()) {
      throw CheckpointError(
          "checkpoint subpop blob count does not match shard count");
    }
    if (subpop_count != 0) {
      cp.has_shard_subpop = true;
      for (uint64_t i = 0; i < subpop_count; ++i) {
        const uint64_t subpop_len = reader.Get<uint64_t>();
        cp.shards[static_cast<size_t>(i)].subpop = reader.GetBytes(subpop_len);
      }
    }
  }
  const uint64_t sketch_len = reader.Get<uint64_t>();
  cp.sketch = reader.GetBytes(sketch_len);
  reader.ExpectConsumed();
  SKETCHSAMPLE_METRIC_INC("stream.checkpoint.restores");
  return cp;
}

void FileCheckpointSink::Write(const std::vector<uint8_t>& bytes,
                               uint64_t source_tuples) {
  (void)source_tuples;
  const std::string tmp = path_ + ".tmp";
  {
    std::FILE* out = std::fopen(tmp.c_str(), "wb");
    if (out == nullptr) {
      throw std::runtime_error("cannot open checkpoint file: " + tmp);
    }
    const size_t written =
        bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), out);
    const int close_err = std::fclose(out);
    if (written != bytes.size() || close_err != 0) {
      std::remove(tmp.c_str());
      throw std::runtime_error("short write to checkpoint file: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot replace checkpoint file: " + path_);
  }
}

void RestorePipelineComponents(const PipelineCheckpoint& cp,
                               StreamSource& source, ShedOperator* shed,
                               ShedController* controller) {
  if (cp.has_shed && shed != nullptr) shed->RestoreState(cp.shed);
  if (cp.has_controller && controller != nullptr) {
    controller->RestoreState(cp.controller);
  }
  const uint64_t discarded = DiscardTuples(source, cp.source_tuples);
  if (discarded != cp.source_tuples) {
    throw CheckpointError(
        "source ended before the checkpointed position; it is not the "
        "stream this checkpoint was taken against");
  }
}

}  // namespace sketchsample
