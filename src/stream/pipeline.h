// Pipeline driver: pumps a source through an operator chain and measures
// throughput. The options-based overload adds the robustness layer:
// adaptive load shedding (a ShedController retargeting a ShedOperator per
// window), a stall retry budget so a temporarily blocked source degrades
// instead of hanging the pump loop, and periodic checkpoints so a killed
// pipeline resumes bit-exactly (src/stream/checkpoint.h).
#ifndef SKETCHSAMPLE_STREAM_PIPELINE_H_
#define SKETCHSAMPLE_STREAM_PIPELINE_H_

#include <cstddef>
#include <cstdint>

#include "src/stream/checkpoint.h"
#include "src/stream/operators.h"
#include "src/stream/shed_controller.h"
#include "src/stream/source.h"

namespace sketchsample {

/// Default pump granularity: big enough to amortize the per-chunk virtual
/// calls and fill the sketches' kUpdateBatchBlock blocks, small enough that
/// chunk scratch stays cache-resident.
inline constexpr size_t kPipelineChunk = 1024;

/// Result of one pipeline run.
struct PipelineStats {
  uint64_t tuples = 0;         ///< tuples pulled from the source
  uint64_t chunks = 0;         ///< OnTuples calls issued (0 in scalar mode)
  double seconds = 0;          ///< wall-clock time of the pump loop
  uint64_t stall_retries = 0;  ///< zero-length pulls ridden out
  bool stalled = false;        ///< true: source died / stall budget exhausted
  bool ended = false;          ///< true: source reported clean end of stream
  uint64_t windows = 0;        ///< controller windows closed
  uint64_t checkpoints = 0;    ///< checkpoints written
  double final_p = 1.0;        ///< shed rate in force when the pump stopped
  double TuplesPerSecond() const {
    return seconds > 0 ? static_cast<double>(tuples) / seconds : 0.0;
  }
};

/// Robustness/control knobs for RunPipeline. Default-constructed options
/// reproduce the plain chunked pump loop.
struct PipelineOptions {
  size_t chunk_size = kPipelineChunk;
  /// Stop after this many tuples (0 = run to end of stream). Used to
  /// simulate a mid-stream kill in checkpoint tests; OnEnd is NOT called
  /// when the cap stops the run (the stream did not end).
  uint64_t max_tuples = 0;
  /// Absolute tuple position the source has already been fast-forwarded
  /// past (checkpoint resume). Window and checkpoint boundaries are
  /// computed from the absolute position, so a resumed run ticks the
  /// controller at the same stream offsets as an uninterrupted one —
  /// which is what makes resume bit-exact. When nonzero and adaptive, the
  /// first window's (offered, kept) deltas are based on the restored
  /// controller's cumulative totals (the counts at the last window tick),
  /// so the shed and controller states must have been restored from the
  /// same checkpoint.
  uint64_t initial_tuples = 0;
  /// Zero-length pulls to ride out while the source reports Stalled()
  /// before giving up. When the budget is exhausted the pump stops with
  /// stats.stalled = true and whatever state was built remains queryable —
  /// a dead source degrades the answer, it does not hang the pipeline.
  uint64_t stall_retries = 64;
  /// Adaptive shedding: when both are set, the controller is ticked every
  /// controller->options().window_tuples offered tuples with the shed
  /// stage's realized (offered, kept) deltas, and the returned p is applied
  /// to `shed`. `shed` must be the (or an) operator in the chain.
  ShedOperator* shed = nullptr;
  ShedController* controller = nullptr;
  /// Checkpointing: every `checkpoint_every` tuples (at the next chunk
  /// boundary), snapshot shed + controller + sketch into `checkpoint_sink`.
  /// All three of sink/every must be set for checkpoints to fire; the
  /// snapshotter is optional (no sketch blob without it).
  CheckpointSink* checkpoint_sink = nullptr;
  SketchSnapshotter* snapshot = nullptr;
  uint64_t checkpoint_every = 0;
};

/// Pulls every tuple from `source`, pushes it into `head`, calls OnEnd, and
/// reports counts and wall-clock throughput. With chunk_size > 1 the pump
/// pulls NextChunk/OnTuples batches of up to `chunk_size` tuples; with
/// chunk_size <= 1 it pumps tuple-at-a-time through Next/OnTuple (the
/// pre-batching behavior, kept for operators that care about call shape).
PipelineStats RunPipeline(StreamSource& source, Operator& head,
                          size_t chunk_size = kPipelineChunk);

/// The robust pump loop: chunked pull with stall retries, per-window
/// adaptive shedding, and periodic checkpoints. OnEnd fires only on a clean
/// end of stream (not on a max_tuples stop or a stall death — the partial
/// state stays live for degraded answers or resumption).
PipelineStats RunPipeline(StreamSource& source, Operator& head,
                          const PipelineOptions& options);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_STREAM_PIPELINE_H_
