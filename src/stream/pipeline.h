// Pipeline driver: pumps a source through an operator chain and measures
// throughput.
#ifndef SKETCHSAMPLE_STREAM_PIPELINE_H_
#define SKETCHSAMPLE_STREAM_PIPELINE_H_

#include <cstdint>

#include "src/stream/operators.h"
#include "src/stream/source.h"

namespace sketchsample {

/// Result of one pipeline run.
struct PipelineStats {
  uint64_t tuples = 0;         ///< tuples pulled from the source
  double seconds = 0;          ///< wall-clock time of the pump loop
  double TuplesPerSecond() const {
    return seconds > 0 ? static_cast<double>(tuples) / seconds : 0.0;
  }
};

/// Pulls every tuple from `source`, pushes it into `head`, calls OnEnd, and
/// reports counts and wall-clock throughput.
PipelineStats RunPipeline(StreamSource& source, Operator& head);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_STREAM_PIPELINE_H_
