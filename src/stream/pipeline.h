// Pipeline driver: pumps a source through an operator chain and measures
// throughput.
#ifndef SKETCHSAMPLE_STREAM_PIPELINE_H_
#define SKETCHSAMPLE_STREAM_PIPELINE_H_

#include <cstddef>
#include <cstdint>

#include "src/stream/operators.h"
#include "src/stream/source.h"

namespace sketchsample {

/// Default pump granularity: big enough to amortize the per-chunk virtual
/// calls and fill the sketches' kUpdateBatchBlock blocks, small enough that
/// chunk scratch stays cache-resident.
inline constexpr size_t kPipelineChunk = 1024;

/// Result of one pipeline run.
struct PipelineStats {
  uint64_t tuples = 0;         ///< tuples pulled from the source
  uint64_t chunks = 0;         ///< OnTuples calls issued (0 in scalar mode)
  double seconds = 0;          ///< wall-clock time of the pump loop
  double TuplesPerSecond() const {
    return seconds > 0 ? static_cast<double>(tuples) / seconds : 0.0;
  }
};

/// Pulls every tuple from `source`, pushes it into `head`, calls OnEnd, and
/// reports counts and wall-clock throughput. With chunk_size > 1 the pump
/// pulls NextChunk/OnTuples batches of up to `chunk_size` tuples; with
/// chunk_size <= 1 it pumps tuple-at-a-time through Next/OnTuple (the
/// pre-batching behavior, kept for operators that care about call shape).
PipelineStats RunPipeline(StreamSource& source, Operator& head,
                          size_t chunk_size = kPipelineChunk);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_STREAM_PIPELINE_H_
