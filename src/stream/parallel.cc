#include "src/stream/parallel.h"

#include <thread>

namespace sketchsample {

FagmsSketch ParallelBuildFagms(const std::vector<uint64_t>& stream,
                               const SketchParams& params,
                               size_t num_threads) {
  if (num_threads <= 1 || stream.size() < 2 * num_threads) {
    FagmsSketch sketch(params);
    for (uint64_t key : stream) sketch.Update(key);
    return sketch;
  }

  std::vector<FagmsSketch> partials;
  partials.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) partials.emplace_back(params);

  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  const size_t chunk = (stream.size() + num_threads - 1) / num_threads;
  for (size_t t = 0; t < num_threads; ++t) {
    const size_t begin = t * chunk;
    const size_t end = std::min(stream.size(), begin + chunk);
    workers.emplace_back([&stream, &partials, t, begin, end] {
      for (size_t i = begin; i < end; ++i) partials[t].Update(stream[i]);
    });
  }
  for (auto& worker : workers) worker.join();

  FagmsSketch merged = std::move(partials.front());
  for (size_t t = 1; t < num_threads; ++t) merged.Merge(partials[t]);
  return merged;
}

}  // namespace sketchsample
