#include "src/stream/parallel.h"

#include <algorithm>
#include <thread>
#include <utility>

namespace sketchsample {

FagmsSketch ParallelBuildFagms(const std::vector<uint64_t>& stream,
                               const SketchParams& params,
                               size_t num_threads) {
  FagmsSketch master(params);
  if (num_threads <= 1 || stream.size() < 2 * num_threads) {
    master.UpdateBatch(stream.data(), stream.size());
    return master;
  }

  // Copies of `master` share its (immutable) ξ families and bucket hashes,
  // so workers pay the seeding cost once instead of once per thread.
  std::vector<FagmsSketch> partials(num_threads, master);

  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  const size_t chunk = (stream.size() + num_threads - 1) / num_threads;
  for (size_t t = 0; t < num_threads; ++t) {
    const size_t begin = t * chunk;
    const size_t end = std::min(stream.size(), begin + chunk);
    workers.emplace_back([&stream, &partials, t, begin, end] {
      partials[t].UpdateBatch(stream.data() + begin, end - begin);
    });
  }
  for (auto& worker : workers) worker.join();

  FagmsSketch merged = std::move(partials.front());
  for (size_t t = 1; t < num_threads; ++t) merged.Merge(partials[t]);
  return merged;
}

}  // namespace sketchsample
