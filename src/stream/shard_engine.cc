#include "src/stream/shard_engine.h"

#include <algorithm>
#include "src/util/atomics_policy.h"
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/sampling/bernoulli.h"
#include "src/util/metrics.h"
#include "src/util/rng.h"
#include "src/util/spsc_queue.h"
#include "src/util/timer.h"

namespace sketchsample {

namespace {

// One routed batch. The buffer cycles between the router and one worker
// through the lane's two rings; `p` rides along so a retarget at a window
// boundary never races a chunk already in flight (the worker sheds with the
// rate that was in force when the chunk was routed).
struct Chunk {
  std::vector<uint64_t> values;
  size_t count = 0;    // live tuples in `values`
  uint64_t base = 0;   // absolute position of values[0]
  double p = 1.0;      // keep-probability for this chunk
  bool stop = false;   // shutdown sentinel: worker exits, buffer not recycled
};

// Applies a survivor batch to a sketch through its widest interface.
template <typename SketchT>
void UpdateInto(SketchT& sketch, const uint64_t* values, size_t n) {
  if constexpr (requires { sketch.UpdateBatch(values, n); }) {
    sketch.UpdateBatch(values, n);
  } else {
    for (size_t i = 0; i < n; ++i) sketch.Update(values[i]);
  }
}

// Operator facade over a worker's partial sketch, so the fault-injection
// wrapper (an Operator) can sit between the shed stage and the sketch.
template <typename SketchT>
class SketchSinkOp final : public Operator {
 public:
  explicit SketchSinkOp(SketchT* sketch) : sketch_(sketch) {}
  void OnTuple(uint64_t value) override { sketch_->Update(value); }
  void OnTuples(const uint64_t* values, size_t n) override {
    UpdateInto(*sketch_, values, n);
  }

 private:
  SketchT* sketch_;
};

// Deserializes a shard partial as the engine's concrete sketch type
// (overload set in place of a traits class).
AgmsSketch DeserializePartial(const AgmsSketch&,
                              const std::vector<uint8_t>& blob) {
  return DeserializeAgms(blob);
}
FagmsSketch DeserializePartial(const FagmsSketch&,
                               const std::vector<uint8_t>& blob) {
  return DeserializeFagms(blob);
}
CountMinSketch DeserializePartial(const CountMinSketch&,
                                  const std::vector<uint8_t>& blob) {
  return DeserializeCountMin(blob);
}
FastCountSketch DeserializePartial(const FastCountSketch&,
                                   const std::vector<uint8_t>& blob) {
  return DeserializeFastCount(blob);
}
KmvSketch DeserializePartial(const KmvSketch&,
                             const std::vector<uint8_t>& blob) {
  return DeserializeKmv(blob);
}

}  // namespace

uint64_t ShardDistinctSeed(uint64_t root_seed) {
  // Fixed salt ("KMVAUX00") splits the distinct hash stream off the root
  // seed, the same MixSeed discipline as the per-shard fault streams.
  return MixSeed(root_seed, 0x4b4d56415558'3030ULL);
}

uint64_t ShardQuantileSeed(uint64_t root_seed) {
  // Fixed salt ("KLLQNT00").
  return MixSeed(root_seed, 0x4b4c4c514e54'3030ULL);
}

uint64_t ShardSubpopSeed(uint64_t root_seed) {
  // Fixed salt ("SUBPOP00").
  return MixSeed(root_seed, 0x535542504f50'3030ULL);
}

// One worker lane. The router owns `routed` and only reads the worker-side
// fields (`seen`, `kept`, `partial`) after a quiesce: it spins until
// `processed` (release-incremented by the worker after each chunk) catches
// up with `routed`, and that acquire/release pair publishes everything the
// worker wrote while processing.
template <typename SketchT>
struct ShardEngine<SketchT>::Lane {
  Lane(size_t ring_chunks, size_t chunk_tuples, const SketchT& proto)
      : work(ring_chunks), recycle(ring_chunks), partial(proto) {
    // Data buffers match the ring capacity exactly, so a push to either
    // ring always finds space: every buffer is in exactly one ring or in
    // one thread's hands. The stop sentinel gets its own slot-free buffer
    // (it is pushed only after a quiesce empties the work ring).
    pool.reserve(recycle.capacity() + 1);
    for (size_t i = 0; i < recycle.capacity(); ++i) {
      pool.push_back(std::make_unique<Chunk>());
      pool.back()->values.resize(chunk_tuples);
      Chunk* buffer = pool.back().get();
      recycle.TryPush(buffer);
    }
    pool.push_back(std::make_unique<Chunk>());
    pool.back()->stop = true;
    stop_chunk = pool.back().get();
  }

  // Worker thread body: pop, shed positionally, sketch, recycle.
  void RunWorker(uint64_t root_seed) {
    Chunk* chunk = nullptr;
    while (true) {
      if (!work.TryPop(chunk)) {
        std::this_thread::yield();
        continue;
      }
      if (chunk->stop) break;
      seen += chunk->count;
      const PositionalBernoulliSampler sampler(chunk->p, root_seed);
      size_t survivors;
      if (collect_positions) {
        // The quantile fold needs (position, value) pairs, which the
        // compacting KeepBatch discards; judge each position with the same
        // stateless coin so the survivor set is identical. In-place
        // compaction stays safe: survivors <= i always.
        survivors = 0;
        for (size_t i = 0; i < chunk->count; ++i) {
          const uint64_t position = chunk->base + i;
          if (sampler.Keep(position)) {
            const uint64_t value = chunk->values[i];
            qpending.emplace_back(position, value);
            chunk->values[survivors++] = value;
          }
        }
      } else {
        survivors = sampler.KeepBatch(chunk->base, chunk->values.data(),
                                      chunk->count, chunk->values.data());
      }
      kept += survivors;
      if (kmv.has_value()) {
        // Distinct counting observes the sampled stream itself, before any
        // fault-injection stage corrupts it — the count answers "how many
        // distinct values survived the shed", not "what did the faulty sink
        // see".
        for (size_t i = 0; i < survivors; ++i) kmv->Update(chunk->values[i]);
      }
      if (subpop.has_value()) {
        // Same pre-fault placement as the distinct counter: subpopulation
        // weights describe the sampled stream.
        for (size_t i = 0; i < survivors; ++i) {
          subpop->Update(chunk->values[i]);
        }
      }
      if (survivors > 0) {
        if (head != nullptr) {
          head->OnTuples(chunk->values.data(), survivors);
        } else {
          UpdateInto(partial, chunk->values.data(), survivors);
        }
      }
      processed.fetch_add(1, MemOrder::kRelease);
      recycle.TryPush(chunk);
    }
  }

  SpscQueue<Chunk*> work;     // router -> worker: filled chunks
  SpscQueue<Chunk*> recycle;  // worker -> router: free buffers
  std::vector<std::unique_ptr<Chunk>> pool;
  Chunk* stop_chunk = nullptr;

  SketchT partial;
  // Auxiliary distinct partial (engaged iff options.distinct_k > 0); same
  // ownership discipline as `partial`.
  std::optional<KmvSketch> kmv;
  // Keyed-KMV subpopulation partial (engaged iff options.subpop_k > 0).
  std::optional<KeyedKmvSketch> subpop;
  // Quantile support: kept (position, value) pairs awaiting the router's
  // position-ordered fold into the engine-level KLL. Worker-owned between
  // quiesces; the router drains it in FoldQuantile.
  bool collect_positions = false;
  std::vector<std::pair<uint64_t, uint64_t>> qpending;
  uint64_t seen = 0;  // worker-owned; router reads only after a quiesce
  uint64_t kept = 0;
  // Chunks fully processed; the release increment publishes seen/kept/
  // partial to a router that acquires it.
  alignas(64) StdAtomics::Atomic<uint64_t> processed{0};
  uint64_t routed = 0;  // router-owned
  // Router-owned stash for a buffer popped from `recycle` but not routed
  // (empty NextChunk). The router is the recycle ring's consumer; pushing
  // the buffer back would make it a second producer and race the worker.
  Chunk* spare = nullptr;

  // Optional push-path fault stage: head -> faults -> sink -> partial.
  std::unique_ptr<Operator> sink;
  std::unique_ptr<FaultInjectingOperator> faults;
  Operator* head = nullptr;

  std::thread thread;
};

template <typename SketchT>
ShardEngine<SketchT>::ShardEngine(const SketchT& prototype,
                                  const ShardEngineOptions& options)
    : options_(options),
      proto_(prototype),
      merged_(prototype),
      p_(options.shed_p) {
  if (!(options_.shed_p >= 0.0 && options_.shed_p <= 1.0)) {
    throw std::invalid_argument("ShardEngine shed_p must be in [0, 1]");
  }
  if (options_.shards == 0) options_.shards = 1;
  if (options_.chunk_tuples == 0) options_.chunk_tuples = kPipelineChunk;
  if (options_.queue_chunks < 2) options_.queue_chunks = 2;
  if (options_.controller != nullptr) {
    p_ = options_.controller->p();
  }
  if (options_.distinct_k > 0) {
    // KmvSketch validates k >= 2 itself; the derived seed makes the counter
    // a pure function of (root seed, kept prefix) like everything else.
    distinct_.emplace(options_.distinct_k, ShardDistinctSeed(options_.seed));
  }
  if (options_.quantile_k > 0) {
    if (options_.quantile_fold_every == 0) {
      options_.quantile_fold_every = 65536;
    }
    quantile_.emplace(options_.quantile_k, ShardQuantileSeed(options_.seed));
  }
  if (options_.subpop_k > 0) {
    subpop_.emplace(options_.subpop_k, ShardSubpopSeed(options_.seed));
  }
}

template <typename SketchT>
void ShardEngine<SketchT>::SetSnapshotHook(ShardSnapshotHook<SketchT>* hook,
                                           uint64_t every_tuples) {
  snapshot_hook_ = hook;
  snapshot_every_ = every_tuples;
}

template <typename SketchT>
ShardEngine<SketchT>::~ShardEngine() = default;

template <typename SketchT>
void ShardEngine<SketchT>::Restore(const PipelineCheckpoint& cp,
                                   StreamSource& source) {
  if (!cp.has_shards) {
    throw CheckpointError("checkpoint has no shard section");
  }
  SKETCHSAMPLE_METRIC_INC("engine.shard.restores");
  // Validate everything into locals first; engine state mutates only after
  // the whole checkpoint checks out (a bad blob must not half-restore).
  SketchT base = proto_;
  std::optional<KmvSketch> distinct_base;
  if (distinct_.has_value()) {
    if (!cp.has_shard_distinct) {
      throw CheckpointError(
          "checkpoint has no distinct section but the engine has distinct "
          "counting enabled; resume would silently drop the counter");
    }
    distinct_base.emplace(options_.distinct_k,
                          ShardDistinctSeed(options_.seed));
  }
  std::optional<KllSketch> quantile_base;
  if (quantile_.has_value()) {
    if (!cp.has_quantile_subpop || cp.quantile.empty()) {
      throw CheckpointError(
          "checkpoint has no quantile sketch but the engine has quantile "
          "queries enabled; resume would silently drop rank state");
    }
    quantile_base = [&] {
      try {
        return DeserializeKll(cp.quantile);
      } catch (const std::invalid_argument& error) {
        throw CheckpointError(
            std::string("checkpoint quantile sketch invalid: ") +
            error.what());
      }
    }();
    if (!quantile_->CompatibleWith(*quantile_base)) {
      throw CheckpointError(
          "checkpoint quantile sketch incompatible with engine "
          "configuration (quantile_k/seed mismatch)");
    }
  }
  std::optional<KeyedKmvSketch> subpop_base;
  if (subpop_.has_value()) {
    if (!cp.has_shard_subpop) {
      throw CheckpointError(
          "checkpoint has no subpop section but the engine has "
          "subpopulation queries enabled; resume would silently drop the "
          "sketch");
    }
    subpop_base.emplace(options_.subpop_k, ShardSubpopSeed(options_.seed));
  }
  uint64_t seen = 0;
  uint64_t kept = 0;
  for (const ShardCheckpointState& shard : cp.shards) {
    seen += shard.seen;
    kept += shard.kept;
    if (distinct_base.has_value() && !shard.distinct.empty()) {
      KmvSketch partial = [&] {
        try {
          return DeserializeKmv(shard.distinct);
        } catch (const std::invalid_argument& error) {
          throw CheckpointError(
              std::string("checkpoint shard distinct blob invalid: ") +
              error.what());
        }
      }();
      if (!distinct_base->CompatibleWith(partial)) {
        throw CheckpointError(
            "checkpoint shard distinct counter incompatible with engine "
            "configuration (distinct_k/seed mismatch)");
      }
      distinct_base->Merge(partial);
    }
    if (subpop_base.has_value() && !shard.subpop.empty()) {
      KeyedKmvSketch partial = [&] {
        try {
          return DeserializeKmvKeyed(shard.subpop);
        } catch (const std::invalid_argument& error) {
          throw CheckpointError(
              std::string("checkpoint shard subpop blob invalid: ") +
              error.what());
        }
      }();
      if (!subpop_base->CompatibleWith(partial)) {
        throw CheckpointError(
            "checkpoint shard subpop sketch incompatible with engine "
            "configuration (subpop_k/seed mismatch)");
      }
      subpop_base->Merge(partial);
    }
    if (shard.sketch.empty()) continue;
    SketchT partial = [&] {
      try {
        return DeserializePartial(proto_, shard.sketch);
      } catch (const std::invalid_argument& error) {
        throw CheckpointError(std::string("checkpoint shard sketch invalid: ") +
                              error.what());
      }
    }();
    if (!base.CompatibleWith(partial)) {
      throw CheckpointError(
          "checkpoint shard sketch incompatible with engine prototype");
    }
    base.Merge(partial);
  }
  if (seen != cp.source_tuples) {
    throw CheckpointError(
        "checkpoint shard counts do not cover the source position");
  }
  merged_ = std::move(base);
  if (distinct_base.has_value()) distinct_ = std::move(distinct_base);
  if (quantile_base.has_value()) quantile_ = std::move(quantile_base);
  if (subpop_base.has_value()) subpop_ = std::move(subpop_base);
  total_seen_ = seen;
  total_kept_ = kept;
  p_ = cp.shard_p;
  if (cp.has_controller && options_.controller != nullptr) {
    options_.controller->RestoreState(cp.controller);
    p_ = options_.controller->p();
  }
  initial_tuples_ = cp.source_tuples;
  const uint64_t discarded = DiscardTuples(source, cp.source_tuples);
  if (discarded != cp.source_tuples) {
    throw CheckpointError(
        "source ended before the checkpointed position; it is not the "
        "stream this checkpoint was taken against");
  }
}

template <typename SketchT>
void ShardEngine<SketchT>::WriteCheckpoint(
    const std::vector<std::unique_ptr<Lane>>& lanes, uint64_t total,
    ShardEngineStats& stats) const {
  PipelineCheckpoint cp;
  cp.source_tuples = total;
  cp.has_shards = true;
  cp.shard_p = p_;
  cp.has_shard_distinct = distinct_.has_value();
  cp.has_quantile_subpop = quantile_.has_value() || subpop_.has_value();
  if (quantile_.has_value()) {
    // The engine-level KLL already covers the whole kept prefix — the Run
    // loop folds every lane's pending pairs before checkpointing.
    cp.quantile = SerializeSketch(*quantile_);
  }
  cp.has_shard_subpop = subpop_.has_value();
  cp.shards.reserve(lanes.size());
  for (size_t s = 0; s < lanes.size(); ++s) {
    const Lane& lane = *lanes[s];
    ShardCheckpointState shard;
    shard.seen = lane.seen;
    shard.kept = lane.kept;
    if (s == 0) {
      // The restored base (prior runs / prior shard layouts, already merged
      // into merged_) rides in shard 0's entry so a second kill-and-resume
      // still covers the whole prefix.
      shard.seen += total_seen_;
      shard.kept += total_kept_;
      SketchT with_base = merged_;
      with_base.Merge(lane.partial);
      shard.sketch = SerializeSketch(with_base);
      if (distinct_.has_value()) {
        KmvSketch kmv_base = *distinct_;
        if (lane.kmv.has_value()) kmv_base.Merge(*lane.kmv);
        shard.distinct = SerializeSketch(kmv_base);
      }
      if (subpop_.has_value()) {
        KeyedKmvSketch subpop_base = *subpop_;
        if (lane.subpop.has_value()) subpop_base.Merge(*lane.subpop);
        shard.subpop = SerializeSketch(subpop_base);
      }
    } else {
      shard.sketch = SerializeSketch(lane.partial);
      if (lane.kmv.has_value()) {
        shard.distinct = SerializeSketch(*lane.kmv);
      }
      if (lane.subpop.has_value()) {
        shard.subpop = SerializeSketch(*lane.subpop);
      }
    }
    cp.shards.push_back(std::move(shard));
  }
  if (options_.controller != nullptr) {
    cp.has_controller = true;
    cp.controller = options_.controller->SaveState();
  }
  options_.checkpoint_sink->Write(SerializeCheckpoint(cp), total);
  ++stats.checkpoints;
  SKETCHSAMPLE_METRIC_INC("engine.shard.checkpoints");
}

template <typename SketchT>
void ShardEngine<SketchT>::PublishSnapshot(
    const std::vector<std::unique_ptr<Lane>>& lanes, uint64_t total,
    ShardEngineStats& stats) {
  // Called with every lane quiesced (or joined), so lane partials and
  // counts are safe to read. The snapshot is fully materialized by value —
  // copying the merged sketch here is what lets readers drop every lock.
  ShardEngineSnapshot<SketchT> snap{merged_, {}, {}, {}, 0, 0, 1.0, 0};
  uint64_t kept = total_kept_;
  for (const auto& lane : lanes) {
    snap.sketch.Merge(lane->partial);
    kept += lane->kept;
  }
  if (distinct_.has_value()) {
    snap.distinct = *distinct_;
    for (const auto& lane : lanes) {
      if (lane->kmv.has_value()) snap.distinct->Merge(*lane->kmv);
    }
  }
  if (quantile_.has_value()) {
    // Folded through FoldQuantile before every publication, so the copy
    // already covers the kept prefix up to `total` in position order.
    snap.quantile = *quantile_;
  }
  if (subpop_.has_value()) {
    snap.subpop = *subpop_;
    for (const auto& lane : lanes) {
      if (lane->subpop.has_value()) snap.subpop->Merge(*lane->subpop);
    }
  }
  snap.position = total;
  snap.kept = kept;
  snap.p = p_;
  snap.sequence = ++snapshot_sequence_;
  ++stats.snapshots;
  SKETCHSAMPLE_METRIC_INC("engine.shard.snapshots");
  snapshot_hook_->Publish(std::move(snap));
}

template <typename SketchT>
void ShardEngine<SketchT>::FoldQuantile(
    const std::vector<std::unique_ptr<Lane>>& lanes,
    ShardEngineStats& stats) {
  if (!quantile_.has_value()) return;
  size_t pending = 0;
  for (const auto& lane : lanes) pending += lane->qpending.size();
  if (pending == 0) return;
  // Drain every lane's buffered pairs and replay them in ascending stream
  // position. The KLL state is a pure function of its update sequence, and
  // this keeps that sequence "kept stream in position order" no matter how
  // the stream was partitioned — which is the whole bit-exactness argument
  // for quantiles (the fold boundary itself is irrelevant to the result).
  std::vector<std::pair<uint64_t, uint64_t>> ordered;
  ordered.reserve(pending);
  for (const auto& lane : lanes) {
    ordered.insert(ordered.end(), lane->qpending.begin(),
                   lane->qpending.end());
    lane->qpending.clear();
  }
  std::sort(ordered.begin(), ordered.end());
  for (const auto& pair : ordered) quantile_->Update(pair.second);
  ++stats.quantile_folds;
  SKETCHSAMPLE_METRIC_INC("engine.shard.quantile_folds");
}

template <typename SketchT>
ShardEngineStats ShardEngine<SketchT>::Run(StreamSource& source) {
  ShardEngineStats stats;
  SKETCHSAMPLE_METRIC_SCOPED_TIMER("engine.shard.run");
  Timer timer;

  const size_t shards = options_.shards;
  const size_t chunk_size = options_.chunk_tuples;
  const bool adaptive = options_.controller != nullptr;
  const uint64_t window =
      adaptive ? options_.controller->options().window_tuples : 0;
  const bool checkpointing =
      options_.checkpoint_sink != nullptr && options_.checkpoint_every > 0;
  const bool faulty =
      options_.fault_profile != nullptr && options_.fault_profile->Active();

  std::vector<std::unique_ptr<Lane>> lanes;
  lanes.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    lanes.push_back(
        std::make_unique<Lane>(options_.queue_chunks, chunk_size, proto_));
    Lane& lane = *lanes.back();
    if (distinct_.has_value()) {
      lane.kmv.emplace(options_.distinct_k, ShardDistinctSeed(options_.seed));
    }
    if (subpop_.has_value()) {
      lane.subpop.emplace(options_.subpop_k, ShardSubpopSeed(options_.seed));
    }
    lane.collect_positions = quantile_.has_value();
    if (faulty) {
      lane.sink = std::make_unique<SketchSinkOp<SketchT>>(&lane.partial);
      lane.faults = std::make_unique<FaultInjectingOperator>(
          lane.sink.get(), *options_.fault_profile,
          MixSeed(options_.fault_seed, static_cast<uint64_t>(s)),
          "shard" + std::to_string(s));
      lane.head = lane.faults.get();
    }
  }
  for (auto& lane : lanes) {
    Lane* raw = lane.get();
    const uint64_t seed = options_.seed;
    raw->thread = std::thread([raw, seed] { raw->RunWorker(seed); });
  }

  // Spins until every routed chunk is processed; afterwards the worker-side
  // lane fields are safe to read (and each work ring is empty).
  auto quiesce = [&lanes, &stats] {
    for (auto& lane : lanes) {
      while (lane->processed.load(MemOrder::kAcquire) !=
             lane->routed) {
        std::this_thread::yield();
      }
    }
    ++stats.quiesces;
  };
  // Pushes the stop sentinel (space is guaranteed once the work ring
  // drains) and joins every worker. Join is a full barrier, so lane fields
  // are readable without a quiesce afterwards.
  auto stop_workers = [&lanes] {
    for (auto& lane : lanes) {
      while (!lane->work.TryPush(lane->stop_chunk)) {
        std::this_thread::yield();
      }
    }
    for (auto& lane : lanes) {
      if (lane->thread.joinable()) lane->thread.join();
    }
  };
  // Total kept across the restored base and every lane; quiesced only.
  auto kept_total = [this, &lanes] {
    uint64_t kept = total_kept_;
    for (const auto& lane : lanes) kept += lane->kept;
    return kept;
  };

  // Absolute stream position; window/checkpoint boundaries are phase-locked
  // to it exactly as in RunPipeline, so a resumed engine makes the same
  // control decisions at the same offsets as an uninterrupted one.
  uint64_t total = initial_tuples_;
  uint64_t next_window = adaptive ? (total / window + 1) * window : UINT64_MAX;
  uint64_t next_checkpoint =
      checkpointing ? (total / options_.checkpoint_every + 1) *
                          options_.checkpoint_every
                    : UINT64_MAX;
  const bool snapshotting = snapshot_hook_ != nullptr && snapshot_every_ > 0;
  uint64_t next_snapshot =
      snapshotting ? (total / snapshot_every_ + 1) * snapshot_every_
                   : UINT64_MAX;
  // Quantile folds get their own phase-locked boundary to bound per-lane
  // buffer memory; checkpoint/snapshot boundaries fold opportunistically
  // on top (the fold point never changes the sketch state).
  const bool qfolding = quantile_.has_value();
  uint64_t next_qfold =
      qfolding ? (total / options_.quantile_fold_every + 1) *
                     options_.quantile_fold_every
               : UINT64_MAX;
  // Window deltas measure against the totals at the last tick: controller
  // totals on a resume (checkpoints need not align with windows), realized
  // totals otherwise (mirrors RunPipeline's shed-count bases).
  uint64_t window_seen_base = 0;
  uint64_t window_kept_base = 0;
  if (adaptive) {
    if (initial_tuples_ > 0) {
      window_seen_base = options_.controller->total_offered();
      window_kept_base = options_.controller->total_kept();
    } else {
      window_seen_base = total_seen_;
      window_kept_base = total_kept_;
    }
  }
  Timer window_timer;
  uint64_t window_chunks = 0;
  uint64_t window_ring_stalls = 0;
  uint64_t stall_budget = options_.stall_retries;
  size_t rr = 0;

  try {
    while (true) {
      if (options_.max_tuples > 0 && stats.tuples >= options_.max_tuples) {
        break;
      }
      uint64_t want = std::min<uint64_t>(chunk_size, next_window - total);
      want = std::min(want, next_checkpoint - total);
      want = std::min(want, next_snapshot - total);
      want = std::min(want, next_qfold - total);
      if (options_.max_tuples > 0) {
        want = std::min(want, options_.max_tuples - stats.tuples);
      }

      // A lane with no free buffer is the backpressure signal: the worker
      // has not recycled fast enough. Spin (counted) until one frees up.
      Lane& lane = *lanes[rr];
      Chunk* buffer = lane.spare;
      lane.spare = nullptr;
      while (buffer == nullptr && !lane.recycle.TryPop(buffer)) {
        ++stats.ring_full_retries;
        ++window_ring_stalls;
        std::this_thread::yield();
      }

      const size_t n =
          source.NextChunk(buffer->values.data(), static_cast<size_t>(want));
      if (n == 0) {
        lane.spare = buffer;  // stash router-side; see Lane::spare
        if (source.Stalled()) {
          if (stall_budget == 0) {
            stats.stalled = true;
            SKETCHSAMPLE_METRIC_INC("engine.shard.stall_deaths");
            break;
          }
          --stall_budget;
          ++stats.stall_retries;
          continue;
        }
        stats.ended = true;
        break;
      }
      stall_budget = options_.stall_retries;  // stall episode survived

      buffer->count = n;
      buffer->base = total;
      buffer->p = p_;
      lane.work.TryPush(buffer);  // always fits: pool size == ring capacity
      ++lane.routed;
      // Depth sampled once per routed chunk; divide by engine.shard.chunks
      // for the mean backlog a worker ran behind the router.
      SKETCHSAMPLE_METRIC_ADD("engine.shard.queue.depth_sum",
                              lane.work.SizeApprox());
      stats.tuples += n;
      total += n;
      ++stats.chunks;
      ++window_chunks;
      rr = rr + 1 == shards ? 0 : rr + 1;

      if (adaptive && total >= next_window) {
        quiesce();
        const uint64_t cur_kept = kept_total();
        const uint64_t offered = total - window_seen_base;
        const uint64_t kept = cur_kept - window_kept_base;
        window_seen_base = total;
        window_kept_base = cur_kept;
        const ShedControllerOptions& copts = options_.controller->options();
        double capacity = copts.capacity_per_window;
        if (capacity <= 0.0 && copts.target_tps > 0.0) {
          capacity = copts.target_tps * window_timer.ElapsedSeconds();
        }
        if (options_.ring_backpressure && capacity > 0.0 &&
            window_ring_stalls > 0) {
          // A window that spent a fraction of its routing attempts waiting
          // on a full ring gets its capacity discounted by that fraction: a
          // full ring is the sink saying "too fast" just as surely as a
          // shrunken budget. Spin counts follow real scheduling, so runs
          // with engaged backpressure are not bit-reproducible.
          const double attempts =
              static_cast<double>(window_chunks + window_ring_stalls);
          capacity *= static_cast<double>(window_chunks) / attempts;
        }
        p_ = options_.controller->OnWindow(offered, kept, capacity);
        ++stats.windows;
        window_chunks = 0;
        window_ring_stalls = 0;
        next_window += window;
        window_timer.Start();
      }
      if (qfolding && total >= next_qfold) {
        quiesce();
        FoldQuantile(lanes, stats);
        next_qfold += options_.quantile_fold_every;
      }
      if (checkpointing && total >= next_checkpoint) {
        quiesce();
        FoldQuantile(lanes, stats);  // checkpoint covers the whole prefix
        WriteCheckpoint(lanes, total, stats);
        next_checkpoint += options_.checkpoint_every;
      }
      if (snapshotting && total >= next_snapshot) {
        quiesce();
        FoldQuantile(lanes, stats);  // snapshot covers the whole prefix
        PublishSnapshot(lanes, total, stats);
        next_snapshot += snapshot_every_;
      }
    }
  } catch (...) {
    stop_workers();  // never leak a running thread past the engine
    throw;
  }

  stop_workers();

  // Workers are joined (a full barrier), so the remaining quantile pairs
  // are safe to drain without a quiesce.
  FoldQuantile(lanes, stats);

  // Merge stage: fold every partial into the restored base, in shard order
  // (order does not matter for the result — counter merges are exact sums
  // and KMV union is a set union — but a fixed order keeps runs replayable
  // down to metric values).
  uint64_t run_kept = 0;
  stats.shard_tuples.reserve(shards);
  stats.shard_kept.reserve(shards);
  stats.shard_faults.reserve(shards);
  for (auto& lane : lanes) {
    stats.shard_tuples.push_back(lane->seen);
    stats.shard_kept.push_back(lane->kept);
    stats.shard_faults.push_back(
        lane->faults != nullptr ? lane->faults->faults_injected() : 0);
    run_kept += lane->kept;
    merged_.Merge(lane->partial);
    if (distinct_.has_value() && lane->kmv.has_value()) {
      distinct_->Merge(*lane->kmv);
    }
    if (subpop_.has_value() && lane->subpop.has_value()) {
      subpop_->Merge(*lane->subpop);
    }
    ++stats.merges;
  }
  stats.kept = run_kept;
  total_seen_ += stats.tuples;
  total_kept_ += run_kept;
  initial_tuples_ = total;
  stats.final_p = p_;
  stats.seconds = timer.ElapsedSeconds();

  if (snapshot_hook_ != nullptr) {
    // Final snapshot: everything is folded into merged_/distinct_ now, so
    // publish from the engine state with no lanes to fold (also covers
    // SetSnapshotHook(hook, 0) — publish-at-end-only).
    const std::vector<std::unique_ptr<Lane>> no_lanes;
    PublishSnapshot(no_lanes, total, stats);
  }

  SKETCHSAMPLE_METRIC_ADD("engine.shard.tuples", stats.tuples);
  SKETCHSAMPLE_METRIC_ADD("engine.shard.kept", stats.kept);
  SKETCHSAMPLE_METRIC_ADD("engine.shard.chunks", stats.chunks);
  SKETCHSAMPLE_METRIC_ADD("engine.shard.merges", stats.merges);
  SKETCHSAMPLE_METRIC_ADD("engine.shard.windows", stats.windows);
  SKETCHSAMPLE_METRIC_ADD("engine.shard.queue.full_retries",
                          stats.ring_full_retries);
  SKETCHSAMPLE_METRIC_ADD("engine.shard.quiesces", stats.quiesces);
  return stats;
}

template class ShardEngine<AgmsSketch>;
template class ShardEngine<FagmsSketch>;
template class ShardEngine<CountMinSketch>;
template class ShardEngine<FastCountSketch>;
template class ShardEngine<KmvSketch>;

}  // namespace sketchsample
