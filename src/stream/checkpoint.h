// Checkpoint/recovery for the streaming pipeline.
//
// A checkpoint is a self-describing byte buffer capturing everything a
// pipeline needs to resume bit-exactly after a crash: the absolute source
// position, the shed operator's sampling state (rate, pending skip gap, and
// both sampler RNG states), the adaptive controller's state, and the sketch
// itself (reusing the src/sketch/serialize wire format as an embedded
// blob). Because every component is a deterministic function of (seed,
// consumed prefix), restoring the states and fast-forwarding a freshly
// built source past `source_tuples` reproduces the uninterrupted run's
// sketch contents and estimate bit-for-bit — the kill-and-resume tests
// assert exact equality, not approximation.
//
// Wire format (little-endian, fixed-width):
//
//   magic "SKCP" (4) | version u32 | source_tuples u64 | flags u8 |
//   [shed state: p f64, skip u64, seen u64, forwarded u64, has_skipper u8,
//    coin_rng u64×4, skip_rng u64×4]            — iff flags bit 0
//   [controller state: p f64, backlog f64, windows u64, offered u64,
//    kept u64]                                   — iff flags bit 1
//   [shard section: shard_p f64, shard_count u64, then per shard:
//    seen u64, kept u64, sketch_len u64, sketch bytes,
//    (distinct_len u64, distinct bytes — iff flags bit 3)]  — iff flags bit 2
//   [quantile/subpop section: kll_len u64, kll bytes (0 = quantile
//    disabled), subpop_count u64 (0 or == shard_count), then per shard:
//    subpop_len u64, subpop bytes]                — iff flags bit 4
//   sketch_len u64 | sketch bytes (inner format: src/sketch/serialize.h) |
//   crc32 u32 over every preceding byte
//
// Flag bit 3 (per-shard distinct blobs) extends the shard section with each
// worker's auxiliary KMV distinct counter and is only valid together with
// bit 2; checkpoints written before the service PR simply lack the bit and
// still load.
//
// Flag bit 4 (quantile/subpop section) carries the engine-level KLL
// quantile sketch — a single blob, not per-shard, because the engine folds
// kept tuples into it in stream-position order (src/stream/shard_engine.cc)
// — and the per-worker keyed-KMV subpopulation sketches. Only valid
// together with bit 2; older checkpoints simply lack the bit and still
// load.
//
// Deserialization validates magic, version, flags, lengths, value ranges,
// and the CRC32 footer, throwing CheckpointError on any mismatch — a
// corrupt or truncated checkpoint must never crash the process or load
// silently.
#ifndef SKETCHSAMPLE_STREAM_CHECKPOINT_H_
#define SKETCHSAMPLE_STREAM_CHECKPOINT_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/sketch/serialize.h"
#include "src/stream/operators.h"
#include "src/stream/shed_controller.h"
#include "src/stream/source.h"

namespace sketchsample {

/// Typed error for malformed, truncated, or corrupt checkpoint buffers.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One shard's recoverable state inside a sharded-engine checkpoint
/// (src/stream/shard_engine.h): the worker's realized counts and its
/// partial sketch as an embedded src/sketch/serialize.h blob.
struct ShardCheckpointState {
  uint64_t seen = 0;            ///< tuples routed to this shard's worker
  uint64_t kept = 0;            ///< tuples surviving the positional shed
  std::vector<uint8_t> sketch;  ///< partial sketch blob (may be empty)
  /// Auxiliary KMV distinct-counter blob (flag bit 3; may be empty). Rides
  /// next to the primary sketch so a resumed engine keeps answering
  /// distinct-count queries over exactly the positionally-kept prefix.
  std::vector<uint8_t> distinct;
  /// Keyed-KMV subpopulation sketch blob (flag bit 4; may be empty).
  std::vector<uint8_t> subpop;
};

/// One recoverable pipeline snapshot.
struct PipelineCheckpoint {
  /// Tuples the source had emitted when the snapshot was taken; recovery
  /// fast-forwards a fresh source past this prefix (DiscardTuples).
  uint64_t source_tuples = 0;
  bool has_shed = false;
  ShedOperatorState shed{};
  bool has_controller = false;
  ShedController::State controller{};
  /// Sharded-engine section (flag bit 2). `shard_p` is the positional shed
  /// rate in force at the snapshot; `shards` holds one entry per worker.
  /// Because the engine's sampling is positional (partition-independent),
  /// a restore may merge all shard partials into any new shard layout —
  /// resume is bit-exact at any shard count.
  bool has_shards = false;
  double shard_p = 1.0;
  std::vector<ShardCheckpointState> shards;
  /// Set when the shard entries carry auxiliary distinct blobs (flag bit 3,
  /// requires has_shards).
  bool has_shard_distinct = false;
  /// Quantile/subpop section (flag bit 4, requires has_shards). `quantile`
  /// is the engine-level KLL blob (empty when quantile queries are
  /// disabled); `has_shard_subpop` marks per-shard keyed-KMV blobs in the
  /// shard entries' `subpop` fields.
  bool has_quantile_subpop = false;
  std::vector<uint8_t> quantile;
  bool has_shard_subpop = false;
  /// Serialized sketch (src/sketch/serialize.h format); empty when the
  /// pipeline has no checkpointable sketch registered. Restore with the
  /// matching Deserialize* (PeekSketchKind identifies the type).
  std::vector<uint8_t> sketch;
};

std::vector<uint8_t> SerializeCheckpoint(const PipelineCheckpoint& cp);

/// Throws CheckpointError on any format, range, or checksum violation.
PipelineCheckpoint DeserializeCheckpoint(const std::vector<uint8_t>& bytes);

/// Where RunPipeline delivers periodic checkpoints.
class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;
  /// `bytes` is the serialized checkpoint; `source_tuples` its position.
  virtual void Write(const std::vector<uint8_t>& bytes,
                     uint64_t source_tuples) = 0;
};

/// Keeps only the most recent checkpoint in memory (tests, in-process
/// supervision).
class LatestCheckpointSink final : public CheckpointSink {
 public:
  void Write(const std::vector<uint8_t>& bytes,
             uint64_t source_tuples) override {
    bytes_ = bytes;
    source_tuples_ = source_tuples;
    ++writes_;
  }
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  uint64_t source_tuples() const { return source_tuples_; }
  uint64_t writes() const { return writes_; }

 private:
  std::vector<uint8_t> bytes_;
  uint64_t source_tuples_ = 0;
  uint64_t writes_ = 0;
};

/// Persists each checkpoint to `path`, replacing the previous one via a
/// write-to-temporary-then-rename so a crash mid-write leaves the prior
/// checkpoint intact. Throws std::runtime_error on I/O failure.
class FileCheckpointSink final : public CheckpointSink {
 public:
  explicit FileCheckpointSink(std::string path) : path_(std::move(path)) {}
  void Write(const std::vector<uint8_t>& bytes,
             uint64_t source_tuples) override;

 private:
  std::string path_;
};

/// Type-erased "snapshot the sketch" hook for RunPipeline, which cannot see
/// the concrete sketch type behind its sink operator.
class SketchSnapshotter {
 public:
  virtual ~SketchSnapshotter() = default;
  virtual std::vector<uint8_t> Snapshot() const = 0;
};

/// Snapshotter over any serializable sketch. `sketch` must outlive it.
template <typename SketchT>
class SketchSnapshot final : public SketchSnapshotter {
 public:
  explicit SketchSnapshot(const SketchT& sketch) : sketch_(&sketch) {}
  std::vector<uint8_t> Snapshot() const override {
    return SerializeSketch(*sketch_);
  }

 private:
  const SketchT* sketch_;
};

/// Restores the recoverable components from a checkpoint: shed and
/// controller states (when present and the pointer is non-null) and the
/// source position (fast-forwarding `source`, which must be a fresh
/// deterministic reconstruction of the original). Throws CheckpointError
/// if the source ends before the checkpointed position — that means the
/// source is not the one the checkpoint was taken against. The sketch blob
/// is restored separately by the caller, which knows its concrete type.
void RestorePipelineComponents(const PipelineCheckpoint& cp,
                               StreamSource& source, ShedOperator* shed,
                               ShedController* controller);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_STREAM_CHECKPOINT_H_
