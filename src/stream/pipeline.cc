#include "src/stream/pipeline.h"

#include <vector>

#include "src/util/metrics.h"
#include "src/util/timer.h"

namespace sketchsample {

PipelineStats RunPipeline(StreamSource& source, Operator& head,
                          size_t chunk_size) {
  PipelineStats stats;
  SKETCHSAMPLE_METRIC_SCOPED_TIMER("stream.pipeline");
  Timer timer;
  if (chunk_size <= 1) {
    while (auto value = source.Next()) {
      head.OnTuple(*value);
      ++stats.tuples;
    }
  } else {
    std::vector<uint64_t> chunk(chunk_size);
    while (size_t n = source.NextChunk(chunk.data(), chunk_size)) {
      head.OnTuples(chunk.data(), n);
      stats.tuples += n;
      ++stats.chunks;
    }
  }
  head.OnEnd();
  stats.seconds = timer.ElapsedSeconds();
  SKETCHSAMPLE_METRIC_ADD("stream.pipeline.tuples", stats.tuples);
  return stats;
}

}  // namespace sketchsample
