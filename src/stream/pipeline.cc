#include "src/stream/pipeline.h"

#include "src/util/timer.h"

namespace sketchsample {

PipelineStats RunPipeline(StreamSource& source, Operator& head) {
  PipelineStats stats;
  Timer timer;
  while (auto value = source.Next()) {
    head.OnTuple(*value);
    ++stats.tuples;
  }
  head.OnEnd();
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace sketchsample
