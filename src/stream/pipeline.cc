#include "src/stream/pipeline.h"

#include "src/util/metrics.h"
#include "src/util/timer.h"

namespace sketchsample {

PipelineStats RunPipeline(StreamSource& source, Operator& head) {
  PipelineStats stats;
  SKETCHSAMPLE_METRIC_SCOPED_TIMER("stream.pipeline");
  Timer timer;
  while (auto value = source.Next()) {
    head.OnTuple(*value);
    ++stats.tuples;
  }
  head.OnEnd();
  stats.seconds = timer.ElapsedSeconds();
  SKETCHSAMPLE_METRIC_ADD("stream.pipeline.tuples", stats.tuples);
  return stats;
}

}  // namespace sketchsample
