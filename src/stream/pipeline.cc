#include "src/stream/pipeline.h"

#include <algorithm>
#include <vector>

#include "src/util/metrics.h"
#include "src/util/timer.h"

namespace sketchsample {

PipelineStats RunPipeline(StreamSource& source, Operator& head,
                          size_t chunk_size) {
  PipelineStats stats;
  SKETCHSAMPLE_METRIC_SCOPED_TIMER("stream.pipeline");
  Timer timer;
  if (chunk_size <= 1) {
    while (auto value = source.Next()) {
      head.OnTuple(*value);
      ++stats.tuples;
    }
  } else {
    std::vector<uint64_t> chunk(chunk_size);
    while (size_t n = source.NextChunk(chunk.data(), chunk_size)) {
      head.OnTuples(chunk.data(), n);
      stats.tuples += n;
      ++stats.chunks;
    }
  }
  stats.ended = true;
  head.OnEnd();
  stats.seconds = timer.ElapsedSeconds();
  SKETCHSAMPLE_METRIC_ADD("stream.pipeline.tuples", stats.tuples);
  return stats;
}

namespace {

// Builds and delivers one checkpoint at absolute position `total`.
void WriteCheckpoint(const PipelineOptions& options, uint64_t total,
                     PipelineStats& stats) {
  PipelineCheckpoint cp;
  cp.source_tuples = total;
  if (options.shed != nullptr) {
    cp.has_shed = true;
    cp.shed = options.shed->SaveState();
  }
  if (options.controller != nullptr) {
    cp.has_controller = true;
    cp.controller = options.controller->SaveState();
  }
  if (options.snapshot != nullptr) cp.sketch = options.snapshot->Snapshot();
  options.checkpoint_sink->Write(SerializeCheckpoint(cp), total);
  ++stats.checkpoints;
}

}  // namespace

PipelineStats RunPipeline(StreamSource& source, Operator& head,
                          const PipelineOptions& options) {
  PipelineStats stats;
  SKETCHSAMPLE_METRIC_SCOPED_TIMER("stream.pipeline");
  Timer timer;
  const size_t chunk_size = std::max<size_t>(1, options.chunk_size);
  std::vector<uint64_t> chunk(chunk_size);

  const bool adaptive =
      options.shed != nullptr && options.controller != nullptr;
  const uint64_t window =
      adaptive ? options.controller->options().window_tuples : 0;
  const bool checkpointing =
      options.checkpoint_sink != nullptr && options.checkpoint_every > 0;

  // Absolute stream position; window/checkpoint boundaries are phase-locked
  // to it so a resumed run makes the same control decisions at the same
  // offsets as an uninterrupted one.
  uint64_t total = options.initial_tuples;
  uint64_t next_window =
      adaptive ? (total / window + 1) * window : UINT64_MAX;
  uint64_t next_checkpoint =
      checkpointing ? (total / options.checkpoint_every + 1) *
                          options.checkpoint_every
                    : UINT64_MAX;
  // Window deltas are measured against the shed stage's counts at the last
  // window tick. On a fresh run that is the shed's current counts; on a
  // resume it is the controller's cumulative totals — checkpoints need not
  // align with window boundaries, and the restored shed counters sit at the
  // checkpoint position, not at the last window tick. Basing the delta on
  // the controller totals makes the first post-resume window span the same
  // tuples as in the uninterrupted run (bit-exact control decisions).
  uint64_t window_seen_base = 0;
  uint64_t window_kept_base = 0;
  if (adaptive) {
    if (options.initial_tuples > 0) {
      window_seen_base = options.controller->total_offered();
      window_kept_base = options.controller->total_kept();
    } else {
      window_seen_base = options.shed->seen();
      window_kept_base = options.shed->forwarded();
    }
  }
  Timer window_timer;

  uint64_t stall_budget = options.stall_retries;
  while (true) {
    if (options.max_tuples > 0 && stats.tuples >= options.max_tuples) break;
    // Cap the pull so it never crosses a window/checkpoint/max boundary:
    // control actions then happen at exact absolute offsets.
    uint64_t want = std::min<uint64_t>(chunk_size, next_window - total);
    want = std::min(want, next_checkpoint - total);
    if (options.max_tuples > 0) {
      want = std::min(want, options.max_tuples - stats.tuples);
    }
    const size_t n =
        source.NextChunk(chunk.data(), static_cast<size_t>(want));
    if (n == 0) {
      if (source.Stalled()) {
        if (stall_budget == 0) {
          // Retry budget exhausted: the source is dead (or stalled beyond
          // tolerance). Degrade: stop pumping, keep state queryable.
          stats.stalled = true;
          SKETCHSAMPLE_METRIC_INC("stream.pipeline.stall_deaths");
          break;
        }
        --stall_budget;
        ++stats.stall_retries;
        continue;
      }
      stats.ended = true;
      break;
    }
    stall_budget = options.stall_retries;  // stall episode survived
    head.OnTuples(chunk.data(), n);
    stats.tuples += n;
    total += n;
    ++stats.chunks;

    if (adaptive && total >= next_window) {
      const uint64_t offered = options.shed->seen() - window_seen_base;
      const uint64_t kept = options.shed->forwarded() - window_kept_base;
      window_seen_base = options.shed->seen();
      window_kept_base = options.shed->forwarded();
      // Deterministic mode uses the fixed per-window budget; wall-clock
      // mode derives the budget from the target rate and the measured
      // window duration (nondeterministic by nature — tests use the fixed
      // budget, production drivers the rate).
      const ShedControllerOptions& copts = options.controller->options();
      double capacity = copts.capacity_per_window;
      if (capacity <= 0.0 && copts.target_tps > 0.0) {
        capacity = copts.target_tps * window_timer.ElapsedSeconds();
      }
      options.shed->SetP(options.controller->OnWindow(offered, kept, capacity));
      ++stats.windows;
      next_window += window;
      window_timer.Start();
    }
    if (checkpointing && total >= next_checkpoint) {
      WriteCheckpoint(options, total, stats);
      next_checkpoint += options.checkpoint_every;
    }
  }

  if (stats.ended) head.OnEnd();
  if (options.shed != nullptr) stats.final_p = options.shed->p();
  stats.seconds = timer.ElapsedSeconds();
  SKETCHSAMPLE_METRIC_ADD("stream.pipeline.tuples", stats.tuples);
  return stats;
}

}  // namespace sketchsample
