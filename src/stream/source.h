// Stream sources: where tuples come from.
//
// A minimal streaming substrate in the shape §VI describes: a source emits
// join-attribute values, operators (src/stream/operators.h) consume them.
// Sources are pull-based single-pass iterators so unbounded synthetic
// streams never materialize.
#ifndef SKETCHSAMPLE_STREAM_SOURCE_H_
#define SKETCHSAMPLE_STREAM_SOURCE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/data/zipf.h"
#include "src/util/rng.h"

namespace sketchsample {

/// Pull-based tuple source. Next() yields values until exhaustion.
class StreamSource {
 public:
  virtual ~StreamSource() = default;

  /// The next tuple's join-attribute value, or nullopt at end of stream.
  virtual std::optional<uint64_t> Next() = 0;

  /// Fills out[0..max_n) with up to `max_n` tuples and returns how many
  /// were produced; 0 means end of stream. The default pulls Next() per
  /// tuple; concrete sources override it to fill chunks without per-tuple
  /// virtual dispatch, which is what lets RunPipeline pump batches.
  virtual size_t NextChunk(uint64_t* out, size_t max_n) {
    size_t n = 0;
    while (n < max_n) {
      const auto value = Next();
      if (!value) break;
      out[n++] = *value;
    }
    return n;
  }

  /// Distinguishes "no data right now" from "end of stream" after a
  /// zero-length pull. A source that returned 0 from NextChunk (or nullopt
  /// from Next) while Stalled() is true may produce more tuples on a later
  /// pull; the pipeline driver retries such sources up to its stall budget
  /// instead of treating the stream as finished (src/stream/pipeline.h).
  /// Sources that cannot stall keep the default.
  virtual bool Stalled() const { return false; }
};

/// Pulls and drops up to `n` tuples from `source`; returns how many were
/// actually discarded (fewer only at end of stream). Used by checkpoint
/// recovery to fast-forward a freshly constructed deterministic source past
/// the prefix a restored pipeline has already processed.
inline uint64_t DiscardTuples(StreamSource& source, uint64_t n) {
  uint64_t scratch[256];
  uint64_t discarded = 0;
  uint64_t stalled_pulls = 0;
  while (discarded < n) {
    const size_t want = static_cast<size_t>(
        std::min<uint64_t>(n - discarded, 256));
    const size_t got = source.NextChunk(scratch, want);
    if (got == 0) {
      // Tolerate bounded stalls, but never spin forever on a dead source.
      if (!source.Stalled() || ++stalled_pulls > 4096) break;
      continue;
    }
    stalled_pulls = 0;
    discarded += got;
  }
  return discarded;
}

/// Source over a materialized vector (e.g. a relation scan).
class VectorSource final : public StreamSource {
 public:
  explicit VectorSource(std::vector<uint64_t> values)
      : values_(std::move(values)) {}

  std::optional<uint64_t> Next() override {
    if (pos_ >= values_.size()) return std::nullopt;
    return values_[pos_++];
  }

  size_t NextChunk(uint64_t* out, size_t max_n) override {
    const size_t n = std::min(max_n, values_.size() - pos_);
    std::copy_n(values_.data() + pos_, n, out);
    pos_ += n;
    return n;
  }

 private:
  std::vector<uint64_t> values_;
  size_t pos_ = 0;
};

/// Synthetic source emitting `count` i.i.d. Zipf values — the generative
/// stream of §VI-B without materialization.
class ZipfSource final : public StreamSource {
 public:
  ZipfSource(size_t domain_size, double skew, uint64_t count, uint64_t seed)
      : sampler_(domain_size, skew), remaining_(count), rng_(seed) {}

  std::optional<uint64_t> Next() override {
    if (remaining_ == 0) return std::nullopt;
    --remaining_;
    return sampler_.Next(rng_);
  }

  size_t NextChunk(uint64_t* out, size_t max_n) override {
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(max_n, remaining_));
    for (size_t i = 0; i < n; ++i) out[i] = sampler_.Next(rng_);
    remaining_ -= n;
    return n;
  }

 private:
  ZipfSampler sampler_;
  uint64_t remaining_;
  Xoshiro256 rng_;
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_STREAM_SOURCE_H_
