// KMV (k-minimum values) distinct-count estimator.
//
// Online aggregation engines pair the join/F2 statistics of this library
// with distinct-value counts (F0) when choosing plans (§VI-C "statistics
// used by an online aggregation engine to take decisions"). KMV keeps the
// k smallest hash values seen; if the k-th smallest maps to fraction u of
// the hash space, about k/u distinct values exist. The estimator
// (k−1)/u is unbiased for F0 under a uniform hash.
//
// KMV sketches built with the same seed support union (merge the value
// sets, keep the k smallest), giving distinct counts over unions of
// streams — the same shard-then-merge deployment as the linear sketches.
#ifndef SKETCHSAMPLE_SKETCH_KMV_H_
#define SKETCHSAMPLE_SKETCH_KMV_H_

#include <cstddef>
#include <cstdint>
#include <set>
#include <vector>

namespace sketchsample {

/// k-minimum-values distinct counter over 64-bit keys.
class KmvSketch {
 public:
  /// `k` >= 2 minimum values retained; `seed` fixes the hash.
  KmvSketch(size_t k, uint64_t seed);

  /// Observes one stream value (duplicates are free).
  void Update(uint64_t key);

  /// Estimated number of distinct values seen. Exact (the current retained
  /// count) while fewer than k distinct hashes have been seen.
  double EstimateDistinct() const;

  /// Merges another sketch built with the same (k, seed): the result
  /// estimates the distinct count of the union of the two streams.
  void Merge(const KmvSketch& other);

  bool CompatibleWith(const KmvSketch& other) const {
    return k_ == other.k_ && seed_ == other.seed_;
  }

  size_t k() const { return k_; }
  uint64_t seed() const { return seed_; }
  /// Number of hash values currently retained (≤ k).
  size_t retained() const { return minima_.size(); }
  /// The retained minima in ascending order (serialization support).
  const std::set<uint64_t>& minima() const { return minima_; }

  /// Replaces the retained set (deserialization support). `minima` must be
  /// strictly ascending with at most k entries; throws std::invalid_argument
  /// otherwise.
  void LoadMinima(const std::vector<uint64_t>& minima);

 private:
  uint64_t Hash(uint64_t key) const;

  size_t k_;
  uint64_t seed_;
  std::set<uint64_t> minima_;  // the retained smallest hash values
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SKETCH_KMV_H_
