// KMV (k-minimum values) distinct-count estimator.
//
// Online aggregation engines pair the join/F2 statistics of this library
// with distinct-value counts (F0) when choosing plans (§VI-C "statistics
// used by an online aggregation engine to take decisions"). KMV keeps the
// k smallest hash values seen; if the k-th smallest maps to fraction u of
// the hash space, about k/u distinct values exist. The estimator
// (k−1)/u is unbiased for F0 under a uniform hash.
//
// KMV sketches built with the same seed support union (merge the value
// sets, keep the k smallest), giving distinct counts over unions of
// streams — the same shard-then-merge deployment as the linear sketches.
#ifndef SKETCHSAMPLE_SKETCH_KMV_H_
#define SKETCHSAMPLE_SKETCH_KMV_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace sketchsample {

/// k-minimum-values distinct counter over 64-bit keys.
class KmvSketch {
 public:
  /// `k` >= 2 minimum values retained; `seed` fixes the hash.
  KmvSketch(size_t k, uint64_t seed);

  /// Observes one stream value (duplicates are free).
  void Update(uint64_t key);

  /// Estimated number of distinct values seen. Exact (the current retained
  /// count) while fewer than k distinct hashes have been seen.
  double EstimateDistinct() const;

  /// Merges another sketch built with the same (k, seed): the result
  /// estimates the distinct count of the union of the two streams.
  void Merge(const KmvSketch& other);

  bool CompatibleWith(const KmvSketch& other) const {
    return k_ == other.k_ && seed_ == other.seed_;
  }

  size_t k() const { return k_; }
  uint64_t seed() const { return seed_; }
  /// Number of hash values currently retained (≤ k).
  size_t retained() const { return minima_.size(); }
  /// The retained minima in ascending order (serialization support).
  const std::set<uint64_t>& minima() const { return minima_; }

  /// Replaces the retained set (deserialization support). `minima` must be
  /// strictly ascending with at most k entries; throws std::invalid_argument
  /// otherwise.
  void LoadMinima(const std::vector<uint64_t>& minima);

 private:
  uint64_t Hash(uint64_t key) const;

  size_t k_;
  uint64_t seed_;
  std::set<uint64_t> minima_;  // the retained smallest hash values
};

/// Bottom-k sketch that retains the *keys* (and their kept-occurrence
/// counts) alongside the k minimum hashes, enabling Cohen–Kaplan
/// subpopulation-weight estimation (src/core/subpop_estimators.h): the
/// retained entries form a uniform-by-hash sample of the distinct keys, and
/// predicate-filtered weight sums scaled by the inclusion threshold
/// estimate the total weight of any subpopulation chosen after the fact.
///
/// Weight exactness (load-bearing for bit-exact merges): the inclusion
/// threshold (the k-th smallest hash) only shrinks as the stream grows, so
/// any currently retained key has been retained since its first occurrence
/// — its weight is the exact count of occurrences fed to Update(). Under
/// Merge(), an entry below the union's threshold was retained with full
/// weight in every input that saw its key, so merged weights are exact too,
/// making the merged sketch independent of how the stream was partitioned.
class KeyedKmvSketch {
 public:
  struct Entry {
    uint64_t hash = 0;
    uint64_t key = 0;
    uint64_t weight = 0;  ///< exact kept-occurrence count for this key
  };

  /// `k` >= 2 entries retained; `seed` fixes the hash.
  KeyedKmvSketch(size_t k, uint64_t seed);

  /// Observes one occurrence of `key` (weight 1 per call).
  void Update(uint64_t key);

  /// Merges another sketch built with the same (k, seed).
  void Merge(const KeyedKmvSketch& other);

  bool CompatibleWith(const KeyedKmvSketch& other) const {
    return k_ == other.k_ && seed_ == other.seed_;
  }

  /// Estimated distinct key count (same estimator as KmvSketch).
  double EstimateDistinct() const;

  /// True once k entries are retained (the sample is a proper bottom-k
  /// subset rather than the full key set).
  bool saturated() const { return entries_.size() >= k_; }

  /// Normalized inclusion threshold u in (0, 1]: the fraction of hash
  /// space below which entries are retained. 1 while unsaturated.
  double Threshold01() const;

  size_t k() const { return k_; }
  uint64_t seed() const { return seed_; }
  size_t retained() const { return entries_.size(); }
  /// Retained entries in ascending hash order (serialization and
  /// estimation support).
  std::vector<Entry> Entries() const;

  /// Replaces the retained entries (deserialization support). `entries`
  /// must be strictly ascending by hash with weights >= 1 and at most k
  /// items; throws std::invalid_argument otherwise.
  void LoadEntries(const std::vector<Entry>& entries);

 private:
  size_t k_;
  uint64_t seed_;
  std::map<uint64_t, Entry> entries_;  // keyed by hash, ascending
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SKETCH_KMV_H_
