// FastCount sketch — Thorup & Zhang style hash-bucket F2 estimator (ref [4]).
#ifndef SKETCHSAMPLE_SKETCH_FASTCOUNT_H_
#define SKETCHSAMPLE_SKETCH_FASTCOUNT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/prng/hash.h"
#include "src/sketch/sketch.h"
#include "src/util/aligned.h"

namespace sketchsample {

/// FastCount sketch: like Count-Min, each row keeps plain bucket counts
/// c[r][h_r(i)] += weight, but the estimator removes the collision bias
/// analytically instead of taking a min:
///
///   self-join row estimate:  (b·Σc² − (Σc)²) / (b − 1)
///   join row estimate:       (b·Σ c_F c_G − (Σc_F)(Σc_G)) / (b − 1)
///
/// With pairwise-independent bucket hashes these row estimates are unbiased;
/// rows are combined by averaging. One of the four sketch families compared
/// in the paper's ref [4]; used by the sketch-ablation bench.
class FastCountSketch {
 public:
  /// `params.scheme` is ignored (no ξ family). buckets must be >= 2.
  explicit FastCountSketch(const SketchParams& params);

  void Update(uint64_t key, double weight = 1.0);

  /// Adds `weight` copies of every key in keys[0..n), hashing blocks of
  /// kUpdateBatchBlock keys row-at-a-time through BucketBatch. Bit-identical
  /// to calling Update() per key in order.
  void UpdateBatch(const uint64_t* keys, size_t n, double weight = 1.0);
  void UpdateBatch(const std::vector<uint64_t>& keys, double weight = 1.0) {
    UpdateBatch(keys.data(), keys.size(), weight);
  }

  /// Per-row unbiased self-join estimates.
  std::vector<double> SelfJoinRowEstimates() const;
  /// Per-row unbiased join estimates. Requires compatibility.
  std::vector<double> JoinRowEstimates(const FastCountSketch& other) const;

  /// Mean across rows.
  double EstimateSelfJoin() const;
  double EstimateJoin(const FastCountSketch& other) const;

  void Merge(const FastCountSketch& other);
  bool CompatibleWith(const FastCountSketch& other) const;

  size_t rows() const { return params_.rows; }
  size_t buckets() const { return params_.buckets; }
  /// Total footprint: counters (including the 64-byte-line padding the
  /// aligned allocator reserves) plus bucket-hash coefficients.
  size_t MemoryBytes() const {
    return AlignedCounterBytes(counters_.size()) +
           hashes_.size() * sizeof(PairwiseHash);
  }
  const SketchParams& params() const { return params_; }
  const CounterVector& counters() const { return counters_; }

  /// Replaces the counter state (deserialization support). `counters` must
  /// have exactly rows() × buckets() entries.
  void LoadCounters(std::vector<double> counters);

 private:
  double* Row(size_t r) { return counters_.data() + r * params_.buckets; }
  const double* Row(size_t r) const {
    return counters_.data() + r * params_.buckets;
  }

  SketchParams params_;
  std::vector<PairwiseHash> hashes_;
  CounterVector counters_;  // 64-byte aligned (src/util/aligned.h)
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SKETCH_FASTCOUNT_H_
