// F-AGMS (Fast-AGMS / Count-Sketch) — Cormode & Garofalakis; §IV, ref [3].
#ifndef SKETCHSAMPLE_SKETCH_FAGMS_H_
#define SKETCHSAMPLE_SKETCH_FAGMS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/prng/hash.h"
#include "src/prng/xi.h"
#include "src/sketch/sketch.h"
#include "src/util/aligned.h"

namespace sketchsample {

class Cw4Xi;

/// F-AGMS sketch: each row partitions the domain into `buckets` hash buckets
/// and keeps one AGMS counter per bucket:
///
///   c[r][h_r(i)] += weight · ξ_r(i)
///
/// One row with b buckets has (up to hash collisions) the variance of b
/// averaged AGMS estimators, at O(1) update cost — this is the configuration
/// the paper's experiments use ("5,000 or 10,000 buckets ... equivalent to
/// averaging 5,000 or 10,000 basic estimators"). Multiple rows are combined
/// with a median.
///
/// Row estimates:
///   * self-join: Σ_k c[r][k]²                        (a.k.a. the L2² of the row)
///   * join:      Σ_k c_F[r][k] · c_G[r][k]
///
/// The "extreme behavior" of §VII-D — error *increasing* with the amount of
/// sketched data — comes from bucket contention in exactly this structure
/// and reproduces here.
class FagmsSketch {
 public:
  explicit FagmsSketch(const SketchParams& params);

  /// Copies share the immutable ξ families and bucket hashes (XiFamily is
  /// immutable after construction and thread-safe), so copying a sketch to
  /// shard a stream across workers costs only the counter array.
  FagmsSketch(const FagmsSketch& other) = default;
  FagmsSketch& operator=(const FagmsSketch& other) = default;
  FagmsSketch(FagmsSketch&&) = default;
  FagmsSketch& operator=(FagmsSketch&&) = default;

  /// Adds `weight` copies of `key` (negative weight deletes).
  void Update(uint64_t key, double weight = 1.0);

  /// Adds `weight` copies of every key in keys[0..n), processing blocks of
  /// kUpdateBatchBlock keys row-at-a-time through the batched hash/sign
  /// kernels. Bit-identical to calling Update() per key in order: each
  /// counter receives the same increments in the same stream order.
  void UpdateBatch(const uint64_t* keys, size_t n, double weight = 1.0);
  void UpdateBatch(const std::vector<uint64_t>& keys, double weight = 1.0) {
    UpdateBatch(keys.data(), keys.size(), weight);
  }

  /// Per-row self-join estimates Σ_k c².
  std::vector<double> SelfJoinRowEstimates() const;
  /// Per-row join estimates Σ_k c_F c_G. Requires compatibility.
  std::vector<double> JoinRowEstimates(const FagmsSketch& other) const;

  /// Median across rows of the row self-join estimates.
  double EstimateSelfJoin() const;
  /// Median across rows of the row join estimates.
  double EstimateJoin(const FagmsSketch& other) const;

  /// Point frequency estimate of one key (Count-Sketch query): median over
  /// rows of ξ_r(key) · c[r][h_r(key)].
  double EstimateFrequency(uint64_t key) const;

  /// Adds another sketch built with the same params (stream union).
  void Merge(const FagmsSketch& other);

  bool CompatibleWith(const FagmsSketch& other) const;

  size_t rows() const { return params_.rows; }
  size_t buckets() const { return params_.buckets; }
  /// Total footprint: counters, bucket-hash coefficients, and ξ state
  /// (including materialized sign tables).
  size_t MemoryBytes() const;
  const SketchParams& params() const { return params_; }
  /// Raw counter matrix, row-major in one 64-byte-aligned allocation;
  /// exposed for tests and diagnostics.
  const CounterVector& counters() const { return counters_; }

  /// Replaces the counter state (deserialization support). `counters` must
  /// have exactly rows() × buckets() entries.
  void LoadCounters(std::vector<double> counters);

 private:
  double* Row(size_t r) { return counters_.data() + r * params_.buckets; }
  const double* Row(size_t r) const {
    return counters_.data() + r * params_.buckets;
  }

  SketchParams params_;
  std::vector<PairwiseHash> hashes_;
  // Shared, not cloned: families are immutable after construction, so
  // copies (e.g. per-worker shards) alias one ξ state.
  std::vector<std::shared_ptr<const XiFamily>> xis_;
  // Per-row concrete CW4 family (nullptr otherwise), resolved once at
  // construction so UpdateBatch can take the fused hash+sign kernel without
  // per-block dispatch. Points into xis_, which copies share.
  std::vector<const Cw4Xi*> cw4_;
  // Rows × buckets, row-major, 64-byte aligned: vector counter loads and
  // the kernels' block stores never split a cache line, and a row-major
  // layout keeps the per-row fused kernel's scatter gather-free (each row
  // is one contiguous run — see DESIGN.md §2 on the layout trial).
  CounterVector counters_;
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SKETCH_FAGMS_H_
