#include "src/sketch/multiway.h"

#include <stdexcept>
#include <utility>

#include "src/util/metrics.h"
#include "src/util/rng.h"

namespace sketchsample {

namespace {
// Seed stream separator for slot families; each (slot, row) pair gets an
// independent family, identical across relations sharing (scheme, seed).
uint64_t SlotRowSeed(uint64_t seed, size_t slot, size_t row) {
  return MixSeed(seed, 0x3717000000ULL + slot * 100003ULL + row);
}
}  // namespace

MultiwayAgmsSketch::MultiwayAgmsSketch(std::vector<size_t> slots, size_t rows,
                                       XiScheme scheme, uint64_t seed)
    : slots_(std::move(slots)), scheme_(scheme), seed_(seed) {
  if (slots_.empty()) {
    throw std::invalid_argument("multiway sketch needs at least one slot");
  }
  if (rows == 0) {
    throw std::invalid_argument("multiway sketch needs at least one row");
  }
  for (size_t i = 0; i < slots_.size(); ++i) {
    for (size_t j = i + 1; j < slots_.size(); ++j) {
      if (slots_[i] == slots_[j]) {
        throw std::invalid_argument("duplicate slot in multiway sketch");
      }
    }
  }
  xis_.resize(slots_.size());
  for (size_t s = 0; s < slots_.size(); ++s) {
    xis_[s].reserve(rows);
    for (size_t r = 0; r < rows; ++r) {
      xis_[s].push_back(
          MakeXiFamily(scheme, SlotRowSeed(seed, slots_[s], r)));
    }
  }
  counters_.assign(rows, 0.0);
}

MultiwayAgmsSketch::MultiwayAgmsSketch(const MultiwayAgmsSketch& other)
    : slots_(other.slots_),
      scheme_(other.scheme_),
      seed_(other.seed_),
      counters_(other.counters_) {
  xis_.resize(other.xis_.size());
  for (size_t s = 0; s < other.xis_.size(); ++s) {
    xis_[s].reserve(other.xis_[s].size());
    for (const auto& xi : other.xis_[s]) xis_[s].push_back(xi->Clone());
  }
}

MultiwayAgmsSketch& MultiwayAgmsSketch::operator=(
    const MultiwayAgmsSketch& other) {
  if (this == &other) return *this;
  MultiwayAgmsSketch copy(other);
  *this = std::move(copy);
  return *this;
}

void MultiwayAgmsSketch::Update(const std::vector<uint64_t>& keys,
                                double weight) {
  if (keys.size() != slots_.size()) {
    throw std::invalid_argument("multiway update arity mismatch");
  }
  SKETCHSAMPLE_METRIC_INC("sketch.multiway.updates");
  for (size_t r = 0; r < counters_.size(); ++r) {
    double sign = 1.0;
    for (size_t s = 0; s < slots_.size(); ++s) {
      sign *= static_cast<double>(xis_[s][r]->Sign(keys[s]));
    }
    counters_[r] += weight * sign;
  }
}

void MultiwayAgmsSketch::Merge(const MultiwayAgmsSketch& other) {
  if (!CompatibleWith(other) || slots_ != other.slots_) {
    throw std::invalid_argument("merge of incompatible multiway sketches");
  }
  SKETCHSAMPLE_METRIC_INC("sketch.multiway.merges");
  for (size_t r = 0; r < counters_.size(); ++r) {
    counters_[r] += other.counters_[r];
  }
}

bool MultiwayAgmsSketch::CompatibleWith(
    const MultiwayAgmsSketch& other) const {
  return rows() == other.rows() && scheme_ == other.scheme_ &&
         seed_ == other.seed_;
}

double EstimateMultiwayJoin(
    const std::vector<const MultiwayAgmsSketch*>& sketches) {
  if (sketches.empty()) {
    throw std::invalid_argument("multiway join needs at least one sketch");
  }
  const size_t rows = sketches.front()->rows();
  for (const auto* sketch : sketches) {
    if (!sketch->CompatibleWith(*sketches.front())) {
      throw std::invalid_argument(
          "multiway join of incompatible sketches (rows/scheme/seed)");
    }
  }
  double sum = 0;
  for (size_t r = 0; r < rows; ++r) {
    double product = 1.0;
    for (const auto* sketch : sketches) product *= sketch->counters()[r];
    sum += product;
  }
  return sum / static_cast<double>(rows);
}

double EstimateMultiwayJoinOverSamples(
    const std::vector<const MultiwayAgmsSketch*>& sketches,
    const std::vector<double>& keep_probabilities) {
  if (keep_probabilities.size() != sketches.size()) {
    throw std::invalid_argument(
        "one keep-probability per sketched relation is required");
  }
  double scale = 1.0;
  for (double p : keep_probabilities) {
    if (!(p > 0.0) || p > 1.0) {
      throw std::invalid_argument("keep probabilities must be in (0, 1]");
    }
    scale /= p;
  }
  return scale * EstimateMultiwayJoin(sketches);
}

}  // namespace sketchsample
