#include "src/sketch/fastcount.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/util/metrics.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace sketchsample {

namespace {
constexpr uint64_t kHashSeedStream = 0xfc77;
}  // namespace

FastCountSketch::FastCountSketch(const SketchParams& params)
    : params_(params) {
  if (params.rows == 0 || params.buckets < 2) {
    throw std::invalid_argument(
        "FastCount sketch needs rows >= 1, buckets >= 2");
  }
  hashes_.reserve(params.rows);
  for (size_t r = 0; r < params.rows; ++r) {
    hashes_.emplace_back(MixSeed(params.seed, kHashSeedStream + r),
                         params.buckets);
  }
  counters_.assign(params.rows * params.buckets, 0.0);
}

void FastCountSketch::Update(uint64_t key, double weight) {
  SKETCHSAMPLE_METRIC_INC("sketch.fastcount.updates");
  for (size_t r = 0; r < params_.rows; ++r) {
    Row(r)[hashes_[r].Bucket(key)] += weight;
  }
}

void FastCountSketch::UpdateBatch(const uint64_t* keys, size_t n,
                                  double weight) {
  SKETCHSAMPLE_METRIC_ADD("sketch.fastcount.updates", n);
  SKETCHSAMPLE_METRIC_INC("sketch.fastcount.batch_updates");
  uint64_t buckets[kUpdateBatchBlock];
  for (size_t base = 0; base < n; base += kUpdateBatchBlock) {
    const size_t m = std::min(kUpdateBatchBlock, n - base);
    for (size_t r = 0; r < params_.rows; ++r) {
      hashes_[r].BucketBatch(keys + base, m, buckets);
      double* row = Row(r);
      for (size_t i = 0; i < m; ++i) row[buckets[i]] += weight;
    }
  }
}

std::vector<double> FastCountSketch::SelfJoinRowEstimates() const {
  std::vector<double> est;
  est.reserve(params_.rows);
  const double b = static_cast<double>(params_.buckets);
  for (size_t r = 0; r < params_.rows; ++r) {
    const double* row = Row(r);
    double sum = 0, sum_sq = 0;
    for (size_t k = 0; k < params_.buckets; ++k) {
      sum += row[k];
      sum_sq += row[k] * row[k];
    }
    est.push_back((b * sum_sq - sum * sum) / (b - 1.0));
  }
  return est;
}

std::vector<double> FastCountSketch::JoinRowEstimates(
    const FastCountSketch& other) const {
  if (!CompatibleWith(other)) {
    throw std::invalid_argument("join of incompatible FastCount sketches");
  }
  std::vector<double> est;
  est.reserve(params_.rows);
  const double b = static_cast<double>(params_.buckets);
  for (size_t r = 0; r < params_.rows; ++r) {
    const double* x = Row(r);
    const double* y = other.Row(r);
    double sum_x = 0, sum_y = 0, dot = 0;
    for (size_t k = 0; k < params_.buckets; ++k) {
      sum_x += x[k];
      sum_y += y[k];
      dot += x[k] * y[k];
    }
    est.push_back((b * dot - sum_x * sum_y) / (b - 1.0));
  }
  return est;
}

double FastCountSketch::EstimateSelfJoin() const {
  return Mean(SelfJoinRowEstimates());
}

double FastCountSketch::EstimateJoin(const FastCountSketch& other) const {
  return Mean(JoinRowEstimates(other));
}

void FastCountSketch::Merge(const FastCountSketch& other) {
  if (!CompatibleWith(other)) {
    throw std::invalid_argument("merge of incompatible FastCount sketches");
  }
  SKETCHSAMPLE_METRIC_INC("sketch.fastcount.merges");
  for (size_t k = 0; k < counters_.size(); ++k) {
    counters_[k] += other.counters_[k];
  }
}

bool FastCountSketch::CompatibleWith(const FastCountSketch& other) const {
  return params_.rows == other.params_.rows &&
         params_.buckets == other.params_.buckets &&
         params_.seed == other.params_.seed;
}

}  // namespace sketchsample

namespace sketchsample {

void FastCountSketch::LoadCounters(std::vector<double> counters) {
  if (counters.size() != counters_.size()) {
    throw std::invalid_argument("counter payload size mismatch");
  }
  // Copy into the aligned allocation (64-byte guarantee, aligned.h).
  counters_.assign(counters.begin(), counters.end());
}

}  // namespace sketchsample
