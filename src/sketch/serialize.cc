#include "src/sketch/serialize.h"

#include <cstring>
#include <stdexcept>
#include <utility>

namespace sketchsample {

namespace {

constexpr uint8_t kMagic[4] = {'S', 'K', 'S', 'A'};
constexpr uint32_t kVersion = 1;

// FNV-1a over a byte range; cheap integrity check (not cryptographic).
uint64_t Fnv1a(const uint8_t* data, size_t size) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

class Writer {
 public:
  template <typename T>
  void Put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t offset = bytes_.size();
    bytes_.resize(offset + sizeof(T));
    std::memcpy(bytes_.data() + offset, &value, sizeof(T));
  }

  void PutDoubles(const double* values, size_t n) {
    const size_t offset = bytes_.size();
    bytes_.resize(offset + n * sizeof(double));
    std::memcpy(bytes_.data() + offset, values, n * sizeof(double));
  }

  void PutU64s(const std::vector<uint64_t>& values) {
    const size_t offset = bytes_.size();
    bytes_.resize(offset + values.size() * sizeof(uint64_t));
    std::memcpy(bytes_.data() + offset, values.data(),
                values.size() * sizeof(uint64_t));
  }

  std::vector<uint8_t> Finish() {
    const uint64_t checksum = Fnv1a(bytes_.data(), bytes_.size());
    Put(checksum);
    return std::move(bytes_);
  }

 private:
  std::vector<uint8_t> bytes_;
};

class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {
    if (bytes.size() < sizeof(kMagic) + sizeof(uint64_t)) {
      throw std::invalid_argument("sketch buffer too small");
    }
    uint64_t stored;
    std::memcpy(&stored, bytes.data() + bytes.size() - sizeof(stored),
                sizeof(stored));
    if (Fnv1a(bytes.data(), bytes.size() - sizeof(stored)) != stored) {
      throw std::invalid_argument("sketch buffer checksum mismatch");
    }
    end_ = bytes.size() - sizeof(stored);
  }

  template <typename T>
  T Get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > end_) {
      throw std::invalid_argument("sketch buffer truncated");
    }
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::vector<double> GetDoubles(uint64_t count) {
    // Divide instead of multiplying: `count * sizeof(double)` can wrap for
    // a hostile count, sailing past the bound into a huge allocation.
    if (count > (end_ - pos_) / sizeof(double)) {
      throw std::invalid_argument("sketch buffer truncated");
    }
    std::vector<double> values(count);
    std::memcpy(values.data(), bytes_.data() + pos_,
                count * sizeof(double));
    pos_ += count * sizeof(double);
    return values;
  }

  std::vector<uint64_t> GetU64s(uint64_t count) {
    // Same hostile-count guard as GetDoubles: divide, never multiply.
    if (count > (end_ - pos_) / sizeof(uint64_t)) {
      throw std::invalid_argument("sketch buffer truncated");
    }
    std::vector<uint64_t> values(count);
    std::memcpy(values.data(), bytes_.data() + pos_,
                count * sizeof(uint64_t));
    pos_ += count * sizeof(uint64_t);
    return values;
  }

  void ExpectConsumed() const {
    if (pos_ != end_) {
      throw std::invalid_argument("sketch buffer has trailing bytes");
    }
  }

  size_t RemainingBytes() const { return end_ - pos_; }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t pos_ = 0;
  size_t end_ = 0;
};

struct Header {
  SketchKind kind;
  SketchParams params;
  uint64_t counter_count;
};

void WriteHeader(Writer& writer, SketchKind kind, const SketchParams& params,
                 uint64_t counter_count) {
  for (uint8_t b : kMagic) writer.Put(b);
  writer.Put(kVersion);
  writer.Put(static_cast<uint32_t>(kind));
  writer.Put(static_cast<uint64_t>(params.rows));
  writer.Put(static_cast<uint64_t>(params.buckets));
  writer.Put(static_cast<uint32_t>(params.scheme));
  writer.Put(params.seed);
  writer.Put(counter_count);
}

Header ReadHeader(Reader& reader) {
  for (uint8_t expected : kMagic) {
    if (reader.Get<uint8_t>() != expected) {
      throw std::invalid_argument("not a sketch buffer (bad magic)");
    }
  }
  const uint32_t version = reader.Get<uint32_t>();
  if (version != kVersion) {
    throw std::invalid_argument("unsupported sketch format version");
  }
  Header h;
  h.kind = static_cast<SketchKind>(reader.Get<uint32_t>());
  h.params.rows = static_cast<size_t>(reader.Get<uint64_t>());
  h.params.buckets = static_cast<size_t>(reader.Get<uint64_t>());
  const uint32_t scheme = reader.Get<uint32_t>();
  if (scheme > static_cast<uint32_t>(XiScheme::kTabulation)) {
    throw std::invalid_argument("unknown xi scheme in sketch buffer");
  }
  h.params.scheme = static_cast<XiScheme>(scheme);
  h.params.seed = reader.Get<uint64_t>();
  h.counter_count = reader.Get<uint64_t>();
  return h;
}

template <typename SketchT>
std::vector<uint8_t> SerializeImpl(SketchKind kind, const SketchT& sketch) {
  Writer writer;
  WriteHeader(writer, kind, sketch.params(), sketch.counters().size());
  writer.PutDoubles(sketch.counters().data(), sketch.counters().size());
  return writer.Finish();
}

template <typename SketchT>
SketchT DeserializeImpl(SketchKind expected,
                        const std::vector<uint8_t>& buffer) {
  Reader reader(buffer);
  const Header h = ReadHeader(reader);
  if (h.kind != expected) {
    throw std::invalid_argument("sketch buffer holds a different kind");
  }
  // Hostile-buffer hardening: validate the declared shape against the kind
  // and the actual payload size BEFORE constructing the sketch. The
  // checksum only protects against accidental corruption — an attacker can
  // compute a valid FNV-1a for any forged header, so rows/buckets must not
  // be allowed to drive unbounded allocations or multiply into overflow.
  if (h.params.rows == 0) {
    throw std::invalid_argument("sketch buffer declares zero rows");
  }
  uint64_t expected_counters = h.params.rows;
  if (expected != SketchKind::kAgms) {  // AGMS ignores buckets
    if (h.params.buckets == 0) {
      throw std::invalid_argument("sketch buffer declares zero buckets");
    }
    if (__builtin_mul_overflow(static_cast<uint64_t>(h.params.rows),
                               static_cast<uint64_t>(h.params.buckets),
                               &expected_counters)) {
      throw std::invalid_argument("sketch buffer shape overflows");
    }
  }
  if (h.counter_count != expected_counters) {
    throw std::invalid_argument("sketch buffer counter count mismatch");
  }
  if (h.counter_count > reader.RemainingBytes() / sizeof(double)) {
    throw std::invalid_argument("sketch buffer truncated");
  }
  SketchT sketch(h.params);
  if (h.counter_count != sketch.counters().size()) {
    throw std::invalid_argument("sketch buffer counter count mismatch");
  }
  std::vector<double> counters = reader.GetDoubles(h.counter_count);
  reader.ExpectConsumed();
  sketch.LoadCounters(std::move(counters));
  return sketch;
}

}  // namespace

std::vector<uint8_t> SerializeSketch(const AgmsSketch& sketch) {
  return SerializeImpl(SketchKind::kAgms, sketch);
}
std::vector<uint8_t> SerializeSketch(const FagmsSketch& sketch) {
  return SerializeImpl(SketchKind::kFagms, sketch);
}
std::vector<uint8_t> SerializeSketch(const CountMinSketch& sketch) {
  return SerializeImpl(SketchKind::kCountMin, sketch);
}
std::vector<uint8_t> SerializeSketch(const FastCountSketch& sketch) {
  return SerializeImpl(SketchKind::kFastCount, sketch);
}
std::vector<uint8_t> SerializeSketch(const KmvSketch& sketch) {
  // KMV has no (rows, buckets, scheme) shape; map rows := k so the shared
  // header stays self-describing, and carry the retained minima as a u64
  // payload where the linear sketches carry f64 counters.
  Writer writer;
  SketchParams params;
  params.rows = sketch.k();
  params.buckets = 0;
  params.scheme = static_cast<XiScheme>(0);
  params.seed = sketch.seed();
  WriteHeader(writer, SketchKind::kKmv, params, sketch.retained());
  std::vector<uint64_t> minima(sketch.minima().begin(),
                               sketch.minima().end());
  writer.PutU64s(minima);
  return writer.Finish();
}

std::vector<uint8_t> SerializeSketch(const KllSketch& sketch) {
  Writer writer;
  SketchParams params;
  params.rows = sketch.k();
  params.buckets = 0;
  params.scheme = static_cast<XiScheme>(0);
  params.seed = sketch.seed();
  WriteHeader(writer, SketchKind::kKll, params, sketch.retained());
  writer.Put(sketch.n());
  writer.Put(sketch.min_item());
  writer.Put(sketch.max_item());
  writer.Put(sketch.compactions());
  writer.Put(sketch.rank_error_variance());
  writer.Put(static_cast<uint64_t>(sketch.levels().size()));
  for (const std::vector<uint64_t>& level : sketch.levels()) {
    writer.Put(static_cast<uint64_t>(level.size()));
    writer.PutU64s(level);
  }
  return writer.Finish();
}

std::vector<uint8_t> SerializeSketch(const KeyedKmvSketch& sketch) {
  Writer writer;
  SketchParams params;
  params.rows = sketch.k();
  params.buckets = 0;
  params.scheme = static_cast<XiScheme>(0);
  params.seed = sketch.seed();
  WriteHeader(writer, SketchKind::kKmvKeyed, params, sketch.retained());
  std::vector<uint64_t> triples;
  triples.reserve(sketch.retained() * 3);
  for (const KeyedKmvSketch::Entry& entry : sketch.Entries()) {
    triples.push_back(entry.hash);
    triples.push_back(entry.key);
    triples.push_back(entry.weight);
  }
  writer.PutU64s(triples);
  return writer.Finish();
}

SketchKind PeekSketchKind(const std::vector<uint8_t>& buffer) {
  Reader reader(buffer);
  return ReadHeader(reader).kind;
}

AgmsSketch DeserializeAgms(const std::vector<uint8_t>& buffer) {
  return DeserializeImpl<AgmsSketch>(SketchKind::kAgms, buffer);
}
FagmsSketch DeserializeFagms(const std::vector<uint8_t>& buffer) {
  return DeserializeImpl<FagmsSketch>(SketchKind::kFagms, buffer);
}
CountMinSketch DeserializeCountMin(const std::vector<uint8_t>& buffer) {
  return DeserializeImpl<CountMinSketch>(SketchKind::kCountMin, buffer);
}
FastCountSketch DeserializeFastCount(const std::vector<uint8_t>& buffer) {
  return DeserializeImpl<FastCountSketch>(SketchKind::kFastCount, buffer);
}

KmvSketch DeserializeKmv(const std::vector<uint8_t>& buffer) {
  Reader reader(buffer);
  const Header h = ReadHeader(reader);
  if (h.kind != SketchKind::kKmv) {
    throw std::invalid_argument("sketch buffer holds a different kind");
  }
  if (h.params.rows < 2) {
    throw std::invalid_argument("KMV buffer declares k < 2");
  }
  if (h.params.buckets != 0) {
    throw std::invalid_argument("KMV buffer declares nonzero buckets");
  }
  if (h.counter_count > h.params.rows) {
    throw std::invalid_argument("KMV buffer retains more than k values");
  }
  if (h.counter_count > reader.RemainingBytes() / sizeof(uint64_t)) {
    throw std::invalid_argument("sketch buffer truncated");
  }
  const std::vector<uint64_t> minima = reader.GetU64s(h.counter_count);
  reader.ExpectConsumed();
  KmvSketch sketch(h.params.rows, h.params.seed);
  sketch.LoadMinima(minima);  // rejects unsorted/duplicate payloads
  return sketch;
}

KllSketch DeserializeKll(const std::vector<uint8_t>& buffer) {
  Reader reader(buffer);
  const Header h = ReadHeader(reader);
  if (h.kind != SketchKind::kKll) {
    throw std::invalid_argument("sketch buffer holds a different kind");
  }
  if (h.params.rows < 8) {
    throw std::invalid_argument("KLL buffer declares k < 8");
  }
  if (h.params.buckets != 0) {
    throw std::invalid_argument("KLL buffer declares nonzero buckets");
  }
  const uint64_t n = reader.Get<uint64_t>();
  const uint64_t min_item = reader.Get<uint64_t>();
  const uint64_t max_item = reader.Get<uint64_t>();
  const uint64_t compactions = reader.Get<uint64_t>();
  const double rank_error_var = reader.Get<double>();
  const uint64_t num_levels = reader.Get<uint64_t>();
  if (num_levels == 0 || num_levels > 64) {
    throw std::invalid_argument("KLL buffer declares invalid level count");
  }
  std::vector<std::vector<uint64_t>> levels;
  levels.reserve(num_levels);
  uint64_t total = 0;
  for (uint64_t l = 0; l < num_levels; ++l) {
    const uint64_t count = reader.Get<uint64_t>();
    // Divide, never multiply: a hostile count must not wrap past the bound
    // into a huge allocation.
    if (count > reader.RemainingBytes() / sizeof(uint64_t)) {
      throw std::invalid_argument("sketch buffer truncated");
    }
    levels.push_back(reader.GetU64s(count));
    total += count;
  }
  if (total != h.counter_count) {
    throw std::invalid_argument("KLL buffer counter count mismatch");
  }
  reader.ExpectConsumed();
  KllSketch sketch(h.params.rows, h.params.seed);
  // LoadState enforces weight conservation (level counts × 2^l sum to n)
  // and moment sanity, rejecting structurally forged payloads.
  sketch.LoadState(n, min_item, max_item, compactions, rank_error_var,
                   std::move(levels));
  return sketch;
}

KeyedKmvSketch DeserializeKmvKeyed(const std::vector<uint8_t>& buffer) {
  Reader reader(buffer);
  const Header h = ReadHeader(reader);
  if (h.kind != SketchKind::kKmvKeyed) {
    throw std::invalid_argument("sketch buffer holds a different kind");
  }
  if (h.params.rows < 2) {
    throw std::invalid_argument("keyed KMV buffer declares k < 2");
  }
  if (h.params.buckets != 0) {
    throw std::invalid_argument("keyed KMV buffer declares nonzero buckets");
  }
  if (h.counter_count > h.params.rows) {
    throw std::invalid_argument("keyed KMV buffer retains more than k");
  }
  if (h.counter_count > reader.RemainingBytes() / (3 * sizeof(uint64_t))) {
    throw std::invalid_argument("sketch buffer truncated");
  }
  const std::vector<uint64_t> triples = reader.GetU64s(h.counter_count * 3);
  reader.ExpectConsumed();
  std::vector<KeyedKmvSketch::Entry> entries;
  entries.reserve(h.counter_count);
  for (uint64_t i = 0; i < h.counter_count; ++i) {
    entries.push_back(KeyedKmvSketch::Entry{
        triples[3 * i], triples[3 * i + 1], triples[3 * i + 2]});
  }
  KeyedKmvSketch sketch(h.params.rows, h.params.seed);
  sketch.LoadEntries(entries);  // rejects unsorted hashes / zero weights
  return sketch;
}

}  // namespace sketchsample
