// Dyadic range sketches: range-frequency queries from Count-Sketch levels.
//
// A point-queryable sketch extends to range queries by sketching the
// stream at every dyadic resolution: level ℓ maps key x to its dyadic
// ancestor x >> ℓ. Any range [lo, hi] decomposes into at most 2·log₂(domain)
// dyadic intervals, each answered by a point query at its level; the range
// frequency estimate is their sum. This is the standard construction for
// quantile/range analytics over turnstile streams, and it composes with the
// sampling front-ends of this library exactly like the flat sketch does
// (scale range estimates by 1/p under Bernoulli shedding).
#ifndef SKETCHSAMPLE_SKETCH_DYADIC_H_
#define SKETCHSAMPLE_SKETCH_DYADIC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/sketch/fagms.h"
#include "src/sketch/sketch.h"

namespace sketchsample {

/// Hierarchy of F-AGMS sketches over dyadic aggregates of a bounded key
/// universe [0, 2^log_universe).
class DyadicRangeSketch {
 public:
  /// `log_universe` in [1, 63]: keys must be < 2^log_universe. One F-AGMS
  /// sketch per level (log_universe + 1 levels), each shaped by `params`.
  DyadicRangeSketch(int log_universe, const SketchParams& params);

  /// Adds `weight` copies of `key` at every dyadic level.
  void Update(uint64_t key, double weight = 1.0);

  /// Point frequency estimate (level-0 query).
  double EstimateFrequency(uint64_t key) const;

  /// Estimated total frequency of keys in [lo, hi] (inclusive). Requires
  /// lo <= hi < 2^log_universe.
  double EstimateRange(uint64_t lo, uint64_t hi) const;

  /// Smallest key q such that the estimated mass of [0, q] is at least
  /// `fraction` of the estimated total mass — an approximate quantile.
  /// fraction must be in (0, 1].
  uint64_t EstimateQuantile(double fraction) const;

  void Merge(const DyadicRangeSketch& other);
  bool CompatibleWith(const DyadicRangeSketch& other) const;

  int log_universe() const { return log_universe_; }
  size_t MemoryBytes() const;
  /// Total stream weight consumed (Σ weights).
  double total_weight() const { return total_weight_; }

 private:
  int log_universe_;
  double total_weight_ = 0;
  std::vector<FagmsSketch> levels_;  // levels_[l] sketches key >> l
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SKETCH_DYADIC_H_
