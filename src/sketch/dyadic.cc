#include "src/sketch/dyadic.h"

#include <algorithm>
#include <stdexcept>

#include "src/util/rng.h"

namespace sketchsample {

DyadicRangeSketch::DyadicRangeSketch(int log_universe,
                                     const SketchParams& params)
    : log_universe_(log_universe) {
  if (log_universe < 1 || log_universe > 63) {
    throw std::invalid_argument("log_universe must be in [1, 63]");
  }
  levels_.reserve(log_universe + 1);
  for (int level = 0; level <= log_universe; ++level) {
    SketchParams level_params = params;
    // Independent randomness per level, derived from the master seed.
    level_params.seed = MixSeed(params.seed, 0xd7ad1c00 + level);
    levels_.emplace_back(level_params);
  }
}

void DyadicRangeSketch::Update(uint64_t key, double weight) {
  if (log_universe_ < 64 && (key >> log_universe_) != 0) {
    throw std::invalid_argument("key outside the dyadic universe");
  }
  for (int level = 0; level <= log_universe_; ++level) {
    levels_[level].Update(key >> level, weight);
  }
  total_weight_ += weight;
}

double DyadicRangeSketch::EstimateFrequency(uint64_t key) const {
  return levels_[0].EstimateFrequency(key);
}

double DyadicRangeSketch::EstimateRange(uint64_t lo, uint64_t hi) const {
  if (lo > hi || (hi >> log_universe_) != 0) {
    throw std::invalid_argument("invalid dyadic range");
  }
  // Canonical dyadic decomposition: greedily take the largest aligned
  // block starting at lo that fits in [lo, hi].
  double total = 0;
  uint64_t cursor = lo;
  while (cursor <= hi) {
    int level = 0;
    // Grow the block while it stays aligned and inside the range.
    while (level < log_universe_) {
      const int next = level + 1;
      const uint64_t block = uint64_t{1} << next;
      if ((cursor & (block - 1)) != 0) break;            // alignment
      if (cursor + block - 1 > hi) break;                // fit
      level = next;
    }
    total += levels_[level].EstimateFrequency(cursor >> level);
    const uint64_t advance = uint64_t{1} << level;
    if (cursor > hi - advance + 1) break;  // avoid overflow at universe end
    cursor += advance;
  }
  return total;
}

uint64_t DyadicRangeSketch::EstimateQuantile(double fraction) const {
  if (!(fraction > 0.0) || fraction > 1.0) {
    throw std::invalid_argument("quantile fraction must be in (0, 1]");
  }
  const double target = fraction * total_weight_;
  // Descend the dyadic tree: at each level choose the child whose left
  // subtree mass crosses the remaining target.
  uint64_t prefix = 0;  // node id at the current level
  double remaining = target;
  for (int level = log_universe_ - 1; level >= 0; --level) {
    const uint64_t left_child = prefix << 1;
    const double left_mass =
        std::max(0.0, levels_[level].EstimateFrequency(left_child));
    if (remaining <= left_mass) {
      prefix = left_child;
    } else {
      remaining -= left_mass;
      prefix = left_child + 1;
    }
  }
  return prefix;
}

void DyadicRangeSketch::Merge(const DyadicRangeSketch& other) {
  if (!CompatibleWith(other)) {
    throw std::invalid_argument("merge of incompatible dyadic sketches");
  }
  for (size_t level = 0; level < levels_.size(); ++level) {
    levels_[level].Merge(other.levels_[level]);
  }
  total_weight_ += other.total_weight_;
}

bool DyadicRangeSketch::CompatibleWith(const DyadicRangeSketch& other) const {
  if (log_universe_ != other.log_universe_) return false;
  for (size_t level = 0; level < levels_.size(); ++level) {
    if (!levels_[level].CompatibleWith(other.levels_[level])) return false;
  }
  return true;
}

size_t DyadicRangeSketch::MemoryBytes() const {
  size_t total = 0;
  for (const auto& level : levels_) total += level.MemoryBytes();
  return total;
}

}  // namespace sketchsample
