#include "src/sketch/agms.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/prng/materialized.h"
#include "src/util/metrics.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace sketchsample {

namespace {
// Domain separator so AGMS ξ seeds never collide with bucket-hash seeds
// derived from the same master seed elsewhere.
constexpr uint64_t kXiSeedStream = 0x5153;
}  // namespace

AgmsSketch::AgmsSketch(const SketchParams& params) : params_(params) {
  if (params.rows == 0) {
    throw std::invalid_argument("AGMS sketch needs at least one estimator");
  }
  xis_.reserve(params.rows);
  for (size_t k = 0; k < params.rows; ++k) {
    const uint64_t seed = MixSeed(params.seed, kXiSeedStream + k);
    xis_.push_back(params.materialize_domain > 0
                       ? MakeMaterializedXiFamily(params.scheme, seed,
                                                  params.materialize_domain)
                       : MakeXiFamily(params.scheme, seed));
  }
  counters_.assign(params.rows, 0.0);
}

void AgmsSketch::Update(uint64_t key, double weight) {
  SKETCHSAMPLE_METRIC_INC("sketch.agms.updates");
  for (size_t k = 0; k < counters_.size(); ++k) {
    counters_[k] += weight * static_cast<double>(xis_[k]->Sign(key));
  }
}

void AgmsSketch::UpdateBatch(const uint64_t* keys, size_t n, double weight) {
  SKETCHSAMPLE_METRIC_ADD("sketch.agms.updates", n);
  SKETCHSAMPLE_METRIC_INC("sketch.agms.batch_updates");
  int8_t signs[kUpdateBatchBlock];
  for (size_t base = 0; base < n; base += kUpdateBatchBlock) {
    const size_t m = std::min(kUpdateBatchBlock, n - base);
    for (size_t k = 0; k < counters_.size(); ++k) {
      xis_[k]->SignBatch(keys + base, m, signs);
      // Sequential accumulation (no reassociation) keeps the row's counter
      // bit-identical to the scalar path even for fractional weights.
      double c = counters_[k];
      for (size_t i = 0; i < m; ++i) {
        c += weight * static_cast<double>(signs[i]);
      }
      counters_[k] = c;
    }
  }
}

std::vector<double> AgmsSketch::SelfJoinEstimates() const {
  std::vector<double> est;
  est.reserve(counters_.size());
  for (double s : counters_) est.push_back(s * s);
  return est;
}

std::vector<double> AgmsSketch::JoinEstimates(const AgmsSketch& other) const {
  if (!CompatibleWith(other)) {
    throw std::invalid_argument("join of incompatible AGMS sketches");
  }
  std::vector<double> est;
  est.reserve(counters_.size());
  for (size_t k = 0; k < counters_.size(); ++k) {
    est.push_back(counters_[k] * other.counters_[k]);
  }
  return est;
}

double AgmsSketch::EstimateSelfJoin() const {
  return Mean(SelfJoinEstimates());
}

double AgmsSketch::EstimateJoin(const AgmsSketch& other) const {
  return Mean(JoinEstimates(other));
}

namespace {
double MedianOfGroupMeans(const std::vector<double>& values, size_t groups) {
  if (groups == 0 || values.empty()) {
    throw std::invalid_argument("median-of-means needs >= 1 group");
  }
  const size_t per_group = values.size() / groups;
  if (per_group == 0) {
    throw std::invalid_argument("more groups than estimators");
  }
  std::vector<double> means;
  means.reserve(groups);
  for (size_t g = 0; g < groups; ++g) {
    double sum = 0;
    for (size_t k = g * per_group; k < (g + 1) * per_group; ++k) {
      sum += values[k];
    }
    means.push_back(sum / static_cast<double>(per_group));
  }
  return Median(std::move(means));
}
}  // namespace

double AgmsSketch::EstimateSelfJoinMedianOfMeans(size_t groups) const {
  return MedianOfGroupMeans(SelfJoinEstimates(), groups);
}

double AgmsSketch::EstimateJoinMedianOfMeans(const AgmsSketch& other,
                                             size_t groups) const {
  return MedianOfGroupMeans(JoinEstimates(other), groups);
}

void AgmsSketch::Merge(const AgmsSketch& other) {
  if (!CompatibleWith(other)) {
    throw std::invalid_argument("merge of incompatible AGMS sketches");
  }
  SKETCHSAMPLE_METRIC_INC("sketch.agms.merges");
  for (size_t k = 0; k < counters_.size(); ++k) {
    counters_[k] += other.counters_[k];
  }
}

size_t AgmsSketch::MemoryBytes() const {
  size_t bytes = AlignedCounterBytes(counters_.size());
  for (const auto& xi : xis_) bytes += xi->MemoryBytes();
  return bytes;
}

bool AgmsSketch::CompatibleWith(const AgmsSketch& other) const {
  return params_.rows == other.params_.rows &&
         params_.scheme == other.params_.scheme &&
         params_.seed == other.params_.seed;
}

}  // namespace sketchsample

namespace sketchsample {

void AgmsSketch::LoadCounters(std::vector<double> counters) {
  if (counters.size() != counters_.size()) {
    throw std::invalid_argument("counter payload size mismatch");
  }
  // Copy into the aligned allocation (64-byte guarantee, aligned.h).
  counters_.assign(counters.begin(), counters.end());
}

}  // namespace sketchsample
