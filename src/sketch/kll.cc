#include "src/sketch/kll.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "src/util/metrics.h"
#include "src/util/rng.h"

namespace sketchsample {

namespace {

// Levels are capped far below this in practice (weight 2^l overflows u64 at
// l = 64), and the deserializer enforces the same bound on hostile input.
constexpr size_t kMaxLevels = 64;
constexpr size_t kMinLevelCapacity = 8;

}  // namespace

KllSketch::KllSketch(size_t k, uint64_t seed) : k_(k), seed_(seed) {
  if (k < 8) {
    throw std::invalid_argument("KLL needs k >= 8");
  }
  levels_.emplace_back();
}

size_t KllSketch::LevelCapacity(size_t level, size_t num_levels) const {
  // Geometric decay: the highest level gets k slots, each lower level 2/3
  // of the one above, floored so low levels never degenerate.
  double cap = static_cast<double>(k_);
  for (size_t l = num_levels - 1; l > level; --l) cap *= 2.0 / 3.0;
  const size_t rounded = static_cast<size_t>(std::ceil(cap));
  return std::max(kMinLevelCapacity, rounded);
}

size_t KllSketch::CapacityBudget() const {
  size_t total = 0;
  for (size_t l = 0; l < levels_.size(); ++l) {
    total += LevelCapacity(l, levels_.size());
  }
  return total;
}

size_t KllSketch::retained() const {
  size_t total = 0;
  for (const auto& level : levels_) total += level.size();
  return total;
}

void KllSketch::Update(uint64_t value) {
  SKETCHSAMPLE_METRIC_INC("sketch.kll.updates");
  if (n_ == 0) {
    min_item_ = value;
    max_item_ = value;
  } else {
    min_item_ = std::min(min_item_, value);
    max_item_ = std::max(max_item_, value);
  }
  ++n_;
  levels_[0].push_back(value);
  CompactIfNeeded();
}

void KllSketch::CompactIfNeeded() {
  while (retained() > CapacityBudget()) {
    // Pigeonhole: if every level were within its capacity the total would
    // be within the budget, so an over-capacity level exists; compact the
    // lowest one (cheapest items, keeps the hierarchy shallow).
    size_t target = levels_.size();
    for (size_t l = 0; l < levels_.size(); ++l) {
      if (levels_[l].size() > LevelCapacity(l, levels_.size())) {
        target = l;
        break;
      }
    }
    if (target == levels_.size()) break;  // unreachable; defensive
    CompactLevel(target);
  }
}

void KllSketch::CompactLevel(size_t level) {
  // Grow the hierarchy before taking any reference into levels_ —
  // emplace_back may reallocate the outer vector.
  if (level + 1 == levels_.size()) {
    if (levels_.size() >= kMaxLevels) {
      throw std::logic_error("KLL level hierarchy overflow");
    }
    levels_.emplace_back();
  }
  std::vector<uint64_t>& buf = levels_[level];
  std::sort(buf.begin(), buf.end());
  // Deterministic coin: a pure function of (seed, level, compaction
  // ordinal), so the survivor choice — and with it the whole sketch state —
  // depends only on the update sequence.
  const uint64_t coin =
      MixSeed(seed_, (static_cast<uint64_t>(level) << 32) ^ compactions_) & 1;
  const size_t odd = buf.size() % 2;
  const size_t even_count = buf.size() - odd;
  for (size_t i = coin; i < even_count; i += 2) {
    levels_[level + 1].push_back(buf[i]);
  }
  if (odd != 0) {
    // Odd leftover (the largest after sorting) stays at this level.
    buf[0] = buf[even_count];
    buf.resize(1);
  } else {
    buf.clear();
  }
  ++compactions_;
  // Each compaction at level l shifts any fixed rank by a zero-mean error
  // of magnitude at most 2^l; account its variance conservatively as 4^l.
  rank_error_var_ += std::pow(4.0, static_cast<double>(level));
}

void KllSketch::Merge(const KllSketch& other) {
  if (!CompatibleWith(other)) {
    throw std::invalid_argument("merge of incompatible KLL sketches");
  }
  SKETCHSAMPLE_METRIC_INC("sketch.kll.merges");
  if (other.n_ == 0) return;
  if (n_ == 0) {
    min_item_ = other.min_item_;
    max_item_ = other.max_item_;
  } else {
    min_item_ = std::min(min_item_, other.min_item_);
    max_item_ = std::max(max_item_, other.max_item_);
  }
  while (levels_.size() < other.levels_.size()) levels_.emplace_back();
  for (size_t l = 0; l < other.levels_.size(); ++l) {
    levels_[l].insert(levels_[l].end(), other.levels_[l].begin(),
                      other.levels_[l].end());
  }
  n_ += other.n_;
  compactions_ += other.compactions_;
  rank_error_var_ += other.rank_error_var_;
  CompactIfNeeded();
}

uint64_t KllSketch::EstimateQuantile(double q) const {
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument("quantile rank must be in [0, 1]");
  }
  if (n_ == 0) {
    throw std::invalid_argument("quantile query on an empty sketch");
  }
  if (q == 0.0) return min_item_;
  if (q == 1.0) return max_item_;
  std::vector<std::pair<uint64_t, uint64_t>> items;  // (value, weight)
  items.reserve(retained());
  for (size_t l = 0; l < levels_.size(); ++l) {
    const uint64_t weight = uint64_t{1} << l;
    for (uint64_t v : levels_[l]) items.emplace_back(v, weight);
  }
  std::sort(items.begin(), items.end());
  const double target = q * static_cast<double>(n_);
  uint64_t target_weight =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(target)));
  target_weight = std::min(target_weight, n_);
  uint64_t cumulative = 0;
  for (const auto& [value, weight] : items) {
    cumulative += weight;
    if (cumulative >= target_weight) return value;
  }
  return max_item_;
}

double KllSketch::EstimateRank(uint64_t value) const {
  if (n_ == 0) return 0.0;
  uint64_t below = 0;
  for (size_t l = 0; l < levels_.size(); ++l) {
    const uint64_t weight = uint64_t{1} << l;
    for (uint64_t v : levels_[l]) {
      if (v < value) below += weight;
    }
  }
  return static_cast<double>(below) / static_cast<double>(n_);
}

double KllSketch::RankErrorStddev() const {
  if (n_ == 0) return 0.0;
  return std::sqrt(rank_error_var_) / static_cast<double>(n_);
}

void KllSketch::LoadState(uint64_t n, uint64_t min_item, uint64_t max_item,
                          uint64_t compactions, double rank_error_var,
                          std::vector<std::vector<uint64_t>> levels) {
  if (levels.empty() || levels.size() > kMaxLevels) {
    throw std::invalid_argument("KLL load with invalid level count");
  }
  // Weight conservation: the compactor hierarchy never loses mass, so the
  // per-level counts must account for exactly n observations. This is the
  // single strongest structural check a hostile buffer must pass.
  uint64_t mass = 0;
  for (size_t l = 0; l < levels.size(); ++l) {
    uint64_t level_mass;
    if (__builtin_mul_overflow(static_cast<uint64_t>(levels[l].size()),
                               uint64_t{1} << l, &level_mass) ||
        __builtin_add_overflow(mass, level_mass, &mass)) {
      throw std::invalid_argument("KLL load weight overflow");
    }
  }
  if (mass != n) {
    throw std::invalid_argument("KLL load violates weight conservation");
  }
  if (n > 0 && min_item > max_item) {
    throw std::invalid_argument("KLL load with min above max");
  }
  if (n == 0 && (min_item != 0 || max_item != 0 || compactions != 0)) {
    throw std::invalid_argument("KLL load of empty sketch with stale state");
  }
  if (!std::isfinite(rank_error_var) || rank_error_var < 0.0) {
    throw std::invalid_argument("KLL load with invalid rank-error variance");
  }
  n_ = n;
  min_item_ = min_item;
  max_item_ = max_item;
  compactions_ = compactions;
  rank_error_var_ = rank_error_var;
  levels_ = std::move(levels);
}

}  // namespace sketchsample
