#include "src/sketch/heavy_hitters.h"

#include <algorithm>
#include <stdexcept>

namespace sketchsample {

namespace {
bool Heavier(const HeavyHitter& a, const HeavyHitter& b) {
  if (a.estimated_frequency != b.estimated_frequency) {
    return a.estimated_frequency > b.estimated_frequency;
  }
  return a.key < b.key;
}
}  // namespace

std::vector<HeavyHitter> FindHeavyHitters(const FagmsSketch& sketch,
                                          size_t domain_size,
                                          double threshold, double scale) {
  if (scale <= 0.0) {
    throw std::invalid_argument("heavy-hitter scale must be positive");
  }
  std::vector<HeavyHitter> hitters;
  for (uint64_t key = 0; key < domain_size; ++key) {
    const double estimate = scale * sketch.EstimateFrequency(key);
    if (estimate >= threshold) {
      hitters.push_back({key, estimate});
    }
  }
  std::sort(hitters.begin(), hitters.end(), Heavier);
  return hitters;
}

std::vector<HeavyHitter> TopKFrequent(const FagmsSketch& sketch,
                                      size_t domain_size, size_t k,
                                      double scale) {
  if (scale <= 0.0) {
    throw std::invalid_argument("heavy-hitter scale must be positive");
  }
  std::vector<HeavyHitter> all;
  all.reserve(domain_size);
  for (uint64_t key = 0; key < domain_size; ++key) {
    all.push_back({key, scale * sketch.EstimateFrequency(key)});
  }
  k = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + k, all.end(), Heavier);
  all.resize(k);
  return all;
}

}  // namespace sketchsample
