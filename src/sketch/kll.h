// KLL quantile sketch (Karnin–Lang–Liberty, FOCS'16) over 64-bit values.
//
// The sampled-stream pipeline answers rank/quantile queries on the *kept*
// tuples; the estimators in src/core then widen the rank error by the
// Bernoulli-sampling CLT term at the realized rate p̂ (an analysis the
// source paper does not provide — see docs/DESIGN.md). The sketch itself
// is the standard compactor hierarchy: level l holds items of weight 2^l;
// when the total retained count exceeds the capacity budget, the lowest
// over-capacity level is sorted and every other item (chosen by a seeded
// deterministic coin) is promoted to level l+1.
//
// Determinism contract (load-bearing for the engine's bit-exactness
// guarantee): the full sketch state is a pure function of (k, seed) and
// the *sequence* of Update() calls. Compaction triggers depend only on
// counts and the coin flips only on (seed, level, compaction ordinal), so
// two sketches fed the same value sequence — regardless of where the
// feeder paused, checkpointed, or resumed — are bit-identical. The shard
// engine exploits this by folding kept tuples in ascending stream-position
// order (src/stream/shard_engine.cc), which makes quantile answers
// independent of the shard count.
#ifndef SKETCHSAMPLE_SKETCH_KLL_H_
#define SKETCHSAMPLE_SKETCH_KLL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sketchsample {

/// KLL quantile sketch over uint64 stream values.
class KllSketch {
 public:
  /// `k` >= 8 controls accuracy (rank error ~ O(1/k)); `seed` fixes the
  /// compaction coin. Throws std::invalid_argument for k < 8.
  KllSketch(size_t k, uint64_t seed);

  /// Observes one stream value.
  void Update(uint64_t value);

  /// Merges another sketch built with the same (k, seed). Note: merge is
  /// order-dependent (as in every KLL implementation); the engine's
  /// bit-exactness guarantee comes from position-ordered *updates*, not
  /// from merging per-shard partials.
  void Merge(const KllSketch& other);

  bool CompatibleWith(const KllSketch& other) const {
    return k_ == other.k_ && seed_ == other.seed_;
  }

  /// Value whose rank is approximately q·n, for q in [0, 1]. q = 0 returns
  /// the exact minimum, q = 1 the exact maximum. Throws
  /// std::invalid_argument if q is outside [0, 1] or the sketch is empty.
  uint64_t EstimateQuantile(double q) const;

  /// Approximate normalized rank of `value`: fraction of observed items
  /// strictly below it. Returns 0 for an empty sketch.
  double EstimateRank(uint64_t value) const;

  /// Standard deviation of the normalized rank error, from the per-level
  /// compaction variance accounting (each compaction at level l perturbs
  /// any rank by a zero-mean error of magnitude <= 2^l). Zero while no
  /// compaction has happened (ranks are exact).
  double RankErrorStddev() const;

  size_t k() const { return k_; }
  uint64_t seed() const { return seed_; }
  uint64_t n() const { return n_; }
  /// Total items currently retained across all levels.
  size_t retained() const;
  uint64_t min_item() const { return min_item_; }
  uint64_t max_item() const { return max_item_; }
  uint64_t compactions() const { return compactions_; }
  double rank_error_variance() const { return rank_error_var_; }
  /// Compactor buffers, level 0 first (weight 2^l). Unsorted within a
  /// level; exposed for serialization.
  const std::vector<std::vector<uint64_t>>& levels() const { return levels_; }

  /// Replaces the full state (deserialization support). Validates weight
  /// conservation (sum of level counts times 2^l equals n), level-count
  /// bounds, and moment sanity; throws std::invalid_argument otherwise.
  void LoadState(uint64_t n, uint64_t min_item, uint64_t max_item,
                 uint64_t compactions, double rank_error_var,
                 std::vector<std::vector<uint64_t>> levels);

 private:
  /// Capacity of `level` when `num_levels` levels exist: the top level gets
  /// k slots, each level below 2/3 of the one above, floored at 8.
  size_t LevelCapacity(size_t level, size_t num_levels) const;
  size_t CapacityBudget() const;
  void CompactIfNeeded();
  void CompactLevel(size_t level);

  size_t k_;
  uint64_t seed_;
  uint64_t n_ = 0;
  uint64_t min_item_ = 0;
  uint64_t max_item_ = 0;
  uint64_t compactions_ = 0;       // total compaction operations (coin stream)
  double rank_error_var_ = 0;      // sum over compactions of 4^level
  std::vector<std::vector<uint64_t>> levels_;
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SKETCH_KLL_H_
