// Binary serialization for sketches.
//
// Sketches are tiny compared to the streams they summarize, which makes
// them natural objects to ship across processes: partial sketches built on
// shards are serialized, collected, deserialized, and Merge()d (sketches
// are linear). The format is:
//
//   magic (4 bytes) | version (u32) | kind (u32) | rows (u64) |
//   buckets (u64) | scheme (u32) | seed (u64) | counter_count (u64) |
//   counters (f64 × count) | checksum (u64, FNV-1a over everything above)
//
// Only the seed is stored for the randomness: ξ families and bucket hashes
// are deterministic functions of (scheme, seed), so two endpoints that share
// the code reconstruct identical families. Deserialization validates the
// magic, version, kind, declared sizes, and checksum and throws
// std::invalid_argument on any mismatch.
#ifndef SKETCHSAMPLE_SKETCH_SERIALIZE_H_
#define SKETCHSAMPLE_SKETCH_SERIALIZE_H_

#include <cstdint>
#include <vector>

#include "src/sketch/agms.h"
#include "src/sketch/countmin.h"
#include "src/sketch/fagms.h"
#include "src/sketch/fastcount.h"
#include "src/sketch/kll.h"
#include "src/sketch/kmv.h"

namespace sketchsample {

/// Serialized sketch kind tags (stable on-wire values).
enum class SketchKind : uint32_t {
  kAgms = 1,
  kFagms = 2,
  kCountMin = 3,
  kFastCount = 4,
  kKmv = 5,
  kKll = 6,
  kKmvKeyed = 7,
};

/// Serializes a sketch into a self-describing byte buffer.
std::vector<uint8_t> SerializeSketch(const AgmsSketch& sketch);
std::vector<uint8_t> SerializeSketch(const FagmsSketch& sketch);
std::vector<uint8_t> SerializeSketch(const CountMinSketch& sketch);
std::vector<uint8_t> SerializeSketch(const FastCountSketch& sketch);
/// KMV reuses the header with rows = k, buckets/scheme = 0, and a u64
/// minima payload in place of the f64 counters.
std::vector<uint8_t> SerializeSketch(const KmvSketch& sketch);
/// KLL reuses the header with rows = k, buckets/scheme = 0 and
/// counter_count = total retained items; the payload is
///   n (u64) | min (u64) | max (u64) | compactions (u64) |
///   rank_error_var (f64) | num_levels (u64) |
///   per level: count (u64) + items (u64 × count)
std::vector<uint8_t> SerializeSketch(const KllSketch& sketch);
/// Keyed KMV reuses the header with rows = k, buckets/scheme = 0 and
/// counter_count = retained entries; the payload is (hash, key, weight)
/// u64 triples in ascending hash order.
std::vector<uint8_t> SerializeSketch(const KeyedKmvSketch& sketch);

/// Reads the kind tag without deserializing the full sketch.
/// Throws std::invalid_argument if the buffer is not a sketch.
SketchKind PeekSketchKind(const std::vector<uint8_t>& buffer);

/// Deserializes a sketch of the expected concrete type. Throws
/// std::invalid_argument on format errors, checksum mismatch, or a kind tag
/// that does not match the requested type.
AgmsSketch DeserializeAgms(const std::vector<uint8_t>& buffer);
FagmsSketch DeserializeFagms(const std::vector<uint8_t>& buffer);
CountMinSketch DeserializeCountMin(const std::vector<uint8_t>& buffer);
FastCountSketch DeserializeFastCount(const std::vector<uint8_t>& buffer);
KmvSketch DeserializeKmv(const std::vector<uint8_t>& buffer);
KllSketch DeserializeKll(const std::vector<uint8_t>& buffer);
KeyedKmvSketch DeserializeKmvKeyed(const std::vector<uint8_t>& buffer);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SKETCH_SERIALIZE_H_
