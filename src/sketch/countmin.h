// Count-Min sketch — Cormode & Muthukrishnan; extension baseline (ref [4]).
#ifndef SKETCHSAMPLE_SKETCH_COUNTMIN_H_
#define SKETCHSAMPLE_SKETCH_COUNTMIN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/prng/hash.h"
#include "src/sketch/sketch.h"
#include "src/util/aligned.h"

namespace sketchsample {

/// Count-Min sketch: rows × buckets of non-negative counters,
/// c[r][h_r(i)] += weight. Point, self-join, and join queries take a MIN
/// across rows, so the estimates are one-sided (always over-estimates for
/// non-negative streams). Included as the comparison baseline used by the
/// sketch-ablation bench (ref [4] compares AGMS-family sketches against it).
class CountMinSketch {
 public:
  /// `params.scheme` is ignored (Count-Min uses no ξ family).
  explicit CountMinSketch(const SketchParams& params);

  /// Adds `weight` copies of `key`. Count-Min's guarantees assume
  /// non-negative weights.
  void Update(uint64_t key, double weight = 1.0);

  /// Adds `weight` copies of every key in keys[0..n), hashing blocks of
  /// kUpdateBatchBlock keys row-at-a-time through BucketBatch. Bit-identical
  /// to calling Update() per key in order.
  void UpdateBatch(const uint64_t* keys, size_t n, double weight = 1.0);
  void UpdateBatch(const std::vector<uint64_t>& keys, double weight = 1.0) {
    UpdateBatch(keys.data(), keys.size(), weight);
  }

  /// Conservative update (Estan–Varghese): increments only the counters
  /// that currently define the key's minimum, raising them just enough to
  /// reach min + weight. Point-query error drops substantially on skewed
  /// streams; the trade-offs are that the sketch stops being linear (no
  /// Merge of conservatively-updated sketches, no deletions) and self-join
  /// and join estimates are no longer upper bounds of anything meaningful —
  /// use it for frequency queries only. Requires weight >= 0.
  void UpdateConservative(uint64_t key, double weight = 1.0);

  /// Point frequency upper-estimate: min over rows of c[r][h_r(key)].
  double EstimateFrequency(uint64_t key) const;

  /// Self-join size estimate: min over rows of Σ_k c².
  double EstimateSelfJoin() const;

  /// Join size estimate: min over rows of Σ_k c_F c_G.
  double EstimateJoin(const CountMinSketch& other) const;

  void Merge(const CountMinSketch& other);
  bool CompatibleWith(const CountMinSketch& other) const;

  size_t rows() const { return params_.rows; }
  size_t buckets() const { return params_.buckets; }
  /// Total footprint: counters (including the 64-byte-line padding the
  /// aligned allocator reserves) plus bucket-hash coefficients.
  size_t MemoryBytes() const {
    return AlignedCounterBytes(counters_.size()) +
           hashes_.size() * sizeof(PairwiseHash);
  }
  const SketchParams& params() const { return params_; }
  const CounterVector& counters() const { return counters_; }

  /// Replaces the counter state (deserialization support). `counters` must
  /// have exactly rows() × buckets() entries.
  void LoadCounters(std::vector<double> counters);

 private:
  double* Row(size_t r) { return counters_.data() + r * params_.buckets; }
  const double* Row(size_t r) const {
    return counters_.data() + r * params_.buckets;
  }

  SketchParams params_;
  std::vector<PairwiseHash> hashes_;
  CounterVector counters_;  // 64-byte aligned (src/util/aligned.h)
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SKETCH_COUNTMIN_H_
