// Heavy-hitter extraction from Count-Sketch (F-AGMS) point queries.
//
// F-AGMS answers point-frequency queries (median over rows of
// ξ_r(i)·c[r][h_r(i)]), so for a bounded, enumerable key domain the heavy
// hitters — values whose frequency exceeds a threshold — can be read
// directly out of the sketch. This is the classic Count-Sketch application
// and a natural companion to load shedding: the same sketch built over a
// Bernoulli sample yields frequency estimates scaled by 1/p.
#ifndef SKETCHSAMPLE_SKETCH_HEAVY_HITTERS_H_
#define SKETCHSAMPLE_SKETCH_HEAVY_HITTERS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/sketch/fagms.h"

namespace sketchsample {

/// One extracted heavy hitter.
struct HeavyHitter {
  uint64_t key = 0;
  double estimated_frequency = 0;
};

/// Scans [0, domain_size) and returns every key whose estimated frequency
/// is at least `threshold`, sorted by estimated frequency (descending; ties
/// by key). `scale` multiplies the raw estimates — pass 1/p when the sketch
/// was built over a Bernoulli(p) sample so the threshold applies to the
/// full-stream frequencies.
std::vector<HeavyHitter> FindHeavyHitters(const FagmsSketch& sketch,
                                          size_t domain_size,
                                          double threshold,
                                          double scale = 1.0);

/// Returns the k keys of [0, domain_size) with the largest estimated
/// frequencies, sorted descending (ties by key). k is clamped to the
/// domain size.
std::vector<HeavyHitter> TopKFrequent(const FagmsSketch& sketch,
                                      size_t domain_size, size_t k,
                                      double scale = 1.0);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SKETCH_HEAVY_HITTERS_H_
