// AGMS ("tug-of-war") sketches — Alon, Matias, Szegedy; the paper's §IV.
#ifndef SKETCHSAMPLE_SKETCH_AGMS_H_
#define SKETCHSAMPLE_SKETCH_AGMS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/prng/xi.h"
#include "src/sketch/sketch.h"
#include "src/util/aligned.h"

namespace sketchsample {

/// Basic AGMS sketch: `rows` independent counters S_k = Σ_i f_i ξ^k_i, one
/// 4-wise-independent ±1 family per counter (Eq 12).
///
/// Estimates:
///   * self-join: average (or median-of-means) of S_k²        (Prop 8)
///   * join:      average (or median-of-means) of S_k · T_k   (Prop 7)
///
/// Per-update cost is O(rows) sign evaluations, which is why the paper's
/// experiments use the hash-partitioned F-AGMS variant instead; AGMS is the
/// reference estimator the analysis is stated for.
class AgmsSketch {
 public:
  /// `params.buckets` is ignored; `params.rows` basic estimators are built.
  explicit AgmsSketch(const SketchParams& params);

  /// Copies share the immutable ξ families (XiFamily is immutable after
  /// construction and thread-safe), so copying costs only the counters.
  AgmsSketch(const AgmsSketch& other) = default;
  AgmsSketch& operator=(const AgmsSketch& other) = default;
  AgmsSketch(AgmsSketch&&) = default;
  AgmsSketch& operator=(AgmsSketch&&) = default;

  /// Adds `weight` copies of `key` (negative weight deletes).
  void Update(uint64_t key, double weight = 1.0);

  /// Adds `weight` copies of every key in keys[0..n), evaluating ξ through
  /// the batched kernels in blocks of kUpdateBatchBlock keys, one row at a
  /// time. Bit-identical to calling Update() per key in order (each
  /// counter's additions happen in the same stream order).
  void UpdateBatch(const uint64_t* keys, size_t n, double weight = 1.0);
  void UpdateBatch(const std::vector<uint64_t>& keys, double weight = 1.0) {
    UpdateBatch(keys.data(), keys.size(), weight);
  }

  /// Raw per-estimator self-join estimates S_k².
  std::vector<double> SelfJoinEstimates() const;
  /// Raw per-estimator join estimates S_k · T_k. Requires compatibility.
  std::vector<double> JoinEstimates(const AgmsSketch& other) const;

  /// Mean of SelfJoinEstimates() — the averaged estimator of §IV.
  double EstimateSelfJoin() const;
  /// Mean of JoinEstimates().
  double EstimateJoin(const AgmsSketch& other) const;

  /// Median of `groups` group-means (standard AGMS boosting). groups must
  /// divide rows() evenly or the trailing partial group is dropped.
  double EstimateSelfJoinMedianOfMeans(size_t groups) const;
  double EstimateJoinMedianOfMeans(const AgmsSketch& other,
                                   size_t groups) const;

  /// Adds another sketch built with the same params (stream union).
  void Merge(const AgmsSketch& other);

  /// True when the two sketches share shape, scheme, and seed (and hence
  /// their ξ families), so cross estimates are meaningful.
  bool CompatibleWith(const AgmsSketch& other) const;

  size_t rows() const { return counters_.size(); }
  const CounterVector& counters() const { return counters_; }

  /// Replaces the counter state (deserialization support). `counters` must
  /// have exactly rows() entries.
  void LoadCounters(std::vector<double> counters);
  /// Total footprint: counters plus ξ state (including materialized sign
  /// tables).
  size_t MemoryBytes() const;
  const SketchParams& params() const { return params_; }

 private:
  SketchParams params_;
  // Shared, not cloned: families are immutable after construction.
  std::vector<std::shared_ptr<const XiFamily>> xis_;
  CounterVector counters_;  // 64-byte aligned (src/util/aligned.h)
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SKETCH_AGMS_H_
