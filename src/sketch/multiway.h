// Multi-way join AGMS sketches — the extension of §IV to joins of more than
// two relations (the direction the paper's ref [9] analyzes for sampling).
//
// For an acyclic chain join such as
//
//   R1(a) ⋈_a R2(a, b) ⋈_b R3(b),
//
// associate one independent ±1 family with every *join attribute* (a "slot";
// slot 0 for a, slot 1 for b above) and sketch each relation with the
// product of the families of the slots it carries:
//
//   S1 = Σ f1(a) ξ_a           (slots {0})
//   S2 = Σ f2(a,b) ξ_a ψ_b     (slots {0, 1})
//   S3 = Σ f3(b) ψ_b           (slots {1})
//
// Then E[S1 S2 S3] = Σ_{a,b} f1(a) f2(a,b) f3(b) — the chain-join size —
// because each ξ factor appears exactly twice per surviving term. This
// generalizes: the product of the sketches of all relations is an unbiased
// estimator whenever every slot is shared by exactly two relations (an
// acyclic join). Averaging across rows reduces variance as usual.
//
// Sketching samples works here too: Bernoulli-sample each relation at rate
// p_j, sketch the samples, and scale the product by Π_j 1/p_j (the §V
// scaling argument goes through unchanged because the sampling processes
// are independent of the ξ families and of each other).
#ifndef SKETCHSAMPLE_SKETCH_MULTIWAY_H_
#define SKETCHSAMPLE_SKETCH_MULTIWAY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/prng/xi.h"

namespace sketchsample {

/// AGMS sketch of one relation participating in a multi-way join.
///
/// `slots` lists the global join-attribute slots this relation carries, in
/// the order Update() expects its keys. Sketches participating in the same
/// join must be constructed with the same (scheme, seed, rows) so slot
/// families match across relations.
class MultiwayAgmsSketch {
 public:
  MultiwayAgmsSketch(std::vector<size_t> slots, size_t rows, XiScheme scheme,
                     uint64_t seed);

  MultiwayAgmsSketch(const MultiwayAgmsSketch& other);
  MultiwayAgmsSketch& operator=(const MultiwayAgmsSketch& other);
  MultiwayAgmsSketch(MultiwayAgmsSketch&&) = default;
  MultiwayAgmsSketch& operator=(MultiwayAgmsSketch&&) = default;

  /// Adds a tuple; `keys` holds one join-attribute value per slot, in the
  /// order passed to the constructor. Throws if the arity mismatches.
  void Update(const std::vector<uint64_t>& keys, double weight = 1.0);

  size_t rows() const { return counters_.size(); }
  size_t arity() const { return slots_.size(); }
  const std::vector<size_t>& slots() const { return slots_; }
  const std::vector<double>& counters() const { return counters_; }

  /// Adds another sketch of the same relation schema (stream union).
  void Merge(const MultiwayAgmsSketch& other);

  /// True when shapes, schemes, seeds, and slot lists match.
  bool CompatibleWith(const MultiwayAgmsSketch& other) const;

 private:
  std::vector<size_t> slots_;
  XiScheme scheme_;
  uint64_t seed_ = 0;
  // xis_[slot_index][row]
  std::vector<std::vector<std::unique_ptr<XiFamily>>> xis_;
  std::vector<double> counters_;
};

/// Estimates the size of the acyclic multi-way join of the sketched
/// relations: the average over rows of the product of the relations' row
/// counters. Unbiased when every slot appears in exactly two of the
/// sketches. All sketches must be mutually compatible in rows/scheme/seed.
double EstimateMultiwayJoin(
    const std::vector<const MultiwayAgmsSketch*>& sketches);

/// Same, scaled for independently Bernoulli-sampled relations: the estimate
/// is divided by Π_j p_j (one keep-probability per relation, matching the
/// order of `sketches`).
double EstimateMultiwayJoinOverSamples(
    const std::vector<const MultiwayAgmsSketch*>& sketches,
    const std::vector<double>& keep_probabilities);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SKETCH_MULTIWAY_H_
