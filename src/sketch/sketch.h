// Common sketch vocabulary.
//
// All sketches in this library summarize a stream of (key, weight) updates
// over a 64-bit key domain and answer two queries:
//
//   * self-join size (second frequency moment)  Σ f_i²
//   * size of join with another sketch          Σ f_i g_i
//
// Join queries require the two sketches to be *compatible*: built with the
// same shape, scheme, and seed, so they share the same random ξ families and
// bucket hashes. Sketches are linear: Merge() adds two sketches of the same
// stream partitions, and negative weights implement deletions (turnstile
// updates).
#ifndef SKETCHSAMPLE_SKETCH_SKETCH_H_
#define SKETCHSAMPLE_SKETCH_SKETCH_H_

#include <cstddef>
#include <cstdint>

#include "src/prng/xi.h"

namespace sketchsample {

/// Keys per block in the batched update kernels (UpdateBatch): the block's
/// bucket/sign scratch (~2.25 KiB) stays L1-resident while each row's
/// hash/ξ state and counter stripe are processed row-at-a-time, and one
/// virtual SignBatch dispatch covers the whole block instead of one Sign()
/// call per key.
inline constexpr size_t kUpdateBatchBlock = 256;

/// Shape + randomness parameters shared by the sketch constructors.
struct SketchParams {
  /// Independent repetitions. For AGMS this is the number of basic
  /// estimators averaged; for the hash sketches it is the number of rows
  /// whose estimates are combined by a median (F-AGMS, FastCount) or a
  /// min (Count-Min).
  size_t rows = 1;
  /// Buckets per row (hash sketches only; ignored by AGMS).
  size_t buckets = 5000;
  /// ξ sign-family scheme. EH3 matches the paper's speed-oriented setup;
  /// CW4 provides the exactly-4-wise guarantees of the variance analysis.
  XiScheme scheme = XiScheme::kEh3;
  /// Master seed; all per-row families/hashes are derived from it.
  uint64_t seed = 0;
  /// When > 0, ξ families are materialized into packed sign tables over
  /// [0, materialize_domain) at construction (src/prng/materialized.h):
  /// O(domain) build time and domain/8 bytes per row buy O(1) table-lookup
  /// signs, which makes many-row AGMS sketches practical on bounded
  /// domains. Signs are unchanged, so sketches with and without
  /// materialization are interchangeable.
  size_t materialize_domain = 0;
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_SKETCH_SKETCH_H_
