#include "src/sketch/fagms.h"

#include <stdexcept>

#include "src/prng/materialized.h"
#include "src/util/metrics.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace sketchsample {

namespace {
constexpr uint64_t kHashSeedStream = 0xfa11;
constexpr uint64_t kXiSeedStream = 0xfa22;
}  // namespace

FagmsSketch::FagmsSketch(const SketchParams& params) : params_(params) {
  if (params.rows == 0 || params.buckets == 0) {
    throw std::invalid_argument("F-AGMS sketch needs rows >= 1, buckets >= 1");
  }
  hashes_.reserve(params.rows);
  xis_.reserve(params.rows);
  for (size_t r = 0; r < params.rows; ++r) {
    hashes_.emplace_back(MixSeed(params.seed, kHashSeedStream + r),
                         params.buckets);
    const uint64_t seed = MixSeed(params.seed, kXiSeedStream + r);
    xis_.push_back(params.materialize_domain > 0
                       ? MakeMaterializedXiFamily(params.scheme, seed,
                                                  params.materialize_domain)
                       : MakeXiFamily(params.scheme, seed));
  }
  counters_.assign(params.rows * params.buckets, 0.0);
}

FagmsSketch::FagmsSketch(const FagmsSketch& other)
    : params_(other.params_),
      hashes_(other.hashes_),
      counters_(other.counters_) {
  xis_.reserve(other.xis_.size());
  for (const auto& xi : other.xis_) xis_.push_back(xi->Clone());
}

FagmsSketch& FagmsSketch::operator=(const FagmsSketch& other) {
  if (this == &other) return *this;
  params_ = other.params_;
  hashes_ = other.hashes_;
  counters_ = other.counters_;
  xis_.clear();
  xis_.reserve(other.xis_.size());
  for (const auto& xi : other.xis_) xis_.push_back(xi->Clone());
  return *this;
}

void FagmsSketch::Update(uint64_t key, double weight) {
  SKETCHSAMPLE_METRIC_INC("sketch.fagms.updates");
  for (size_t r = 0; r < params_.rows; ++r) {
    const uint64_t bucket = hashes_[r].Bucket(key);
    Row(r)[bucket] += weight * static_cast<double>(xis_[r]->Sign(key));
  }
}

std::vector<double> FagmsSketch::SelfJoinRowEstimates() const {
  std::vector<double> est;
  est.reserve(params_.rows);
  for (size_t r = 0; r < params_.rows; ++r) {
    const double* row = Row(r);
    double sum = 0;
    for (size_t k = 0; k < params_.buckets; ++k) sum += row[k] * row[k];
    est.push_back(sum);
  }
  return est;
}

std::vector<double> FagmsSketch::JoinRowEstimates(
    const FagmsSketch& other) const {
  if (!CompatibleWith(other)) {
    throw std::invalid_argument("join of incompatible F-AGMS sketches");
  }
  std::vector<double> est;
  est.reserve(params_.rows);
  for (size_t r = 0; r < params_.rows; ++r) {
    const double* a = Row(r);
    const double* b = other.Row(r);
    double sum = 0;
    for (size_t k = 0; k < params_.buckets; ++k) sum += a[k] * b[k];
    est.push_back(sum);
  }
  return est;
}

double FagmsSketch::EstimateSelfJoin() const {
  return Median(SelfJoinRowEstimates());
}

double FagmsSketch::EstimateJoin(const FagmsSketch& other) const {
  return Median(JoinRowEstimates(other));
}

double FagmsSketch::EstimateFrequency(uint64_t key) const {
  std::vector<double> est;
  est.reserve(params_.rows);
  for (size_t r = 0; r < params_.rows; ++r) {
    est.push_back(static_cast<double>(xis_[r]->Sign(key)) *
                  Row(r)[hashes_[r].Bucket(key)]);
  }
  return Median(std::move(est));
}

void FagmsSketch::Merge(const FagmsSketch& other) {
  if (!CompatibleWith(other)) {
    throw std::invalid_argument("merge of incompatible F-AGMS sketches");
  }
  for (size_t k = 0; k < counters_.size(); ++k) {
    counters_[k] += other.counters_[k];
  }
}

bool FagmsSketch::CompatibleWith(const FagmsSketch& other) const {
  return params_.rows == other.params_.rows &&
         params_.buckets == other.params_.buckets &&
         params_.scheme == other.params_.scheme &&
         params_.seed == other.params_.seed;
}

}  // namespace sketchsample

namespace sketchsample {

void FagmsSketch::LoadCounters(std::vector<double> counters) {
  if (counters.size() != counters_.size()) {
    throw std::invalid_argument("counter payload size mismatch");
  }
  counters_ = std::move(counters);
}

}  // namespace sketchsample
