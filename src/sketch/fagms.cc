#include "src/sketch/fagms.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/prng/cw.h"
#include "src/prng/materialized.h"
#include "src/prng/simd/dispatch.h"
#include "src/util/metrics.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace sketchsample {

namespace {
constexpr uint64_t kHashSeedStream = 0xfa11;
constexpr uint64_t kXiSeedStream = 0xfa22;
}  // namespace

FagmsSketch::FagmsSketch(const SketchParams& params) : params_(params) {
  if (params.rows == 0 || params.buckets == 0) {
    throw std::invalid_argument("F-AGMS sketch needs rows >= 1, buckets >= 1");
  }
  hashes_.reserve(params.rows);
  xis_.reserve(params.rows);
  for (size_t r = 0; r < params.rows; ++r) {
    hashes_.emplace_back(MixSeed(params.seed, kHashSeedStream + r),
                         params.buckets);
    const uint64_t seed = MixSeed(params.seed, kXiSeedStream + r);
    xis_.push_back(params.materialize_domain > 0
                       ? MakeMaterializedXiFamily(params.scheme, seed,
                                                  params.materialize_domain)
                       : MakeXiFamily(params.scheme, seed));
  }
  cw4_.reserve(params.rows);
  for (const auto& xi : xis_) {
    cw4_.push_back(dynamic_cast<const Cw4Xi*>(xi.get()));
  }
  counters_.assign(params.rows * params.buckets, 0.0);
}

void FagmsSketch::Update(uint64_t key, double weight) {
  SKETCHSAMPLE_METRIC_INC("sketch.fagms.updates");
  for (size_t r = 0; r < params_.rows; ++r) {
    const uint64_t bucket = hashes_[r].Bucket(key);
    Row(r)[bucket] += weight * static_cast<double>(xis_[r]->Sign(key));
  }
}

void FagmsSketch::UpdateBatch(const uint64_t* keys, size_t n, double weight) {
  SKETCHSAMPLE_METRIC_ADD("sketch.fagms.updates", n);
  SKETCHSAMPLE_METRIC_INC("sketch.fagms.batch_updates");
  // Fused rows take the whole batch in one kernel call: the fused path needs
  // no scratch arrays, so there is no reason to pay the block-loop overhead.
  // Counters are per-row accumulators, so processing rows (and blocks) in any
  // order leaves each counter's addition sequence — and hence its bits —
  // unchanged.
  // The fused bucket+sign row kernel is ISA-dispatched (src/prng/simd/):
  // scalar, AVX2, or AVX-512 per CPU, every level bit-identical to per-key
  // Update() in stream order.
  const auto& kernels = simd::Kernels();
  bool any_generic = false;
  for (size_t r = 0; r < params_.rows; ++r) {
    if (cw4_[r] != nullptr) {
      kernels.fused_cw4_row(hashes_[r].KernelParams(),
                            cw4_[r]->coefficients(), keys, n, weight, Row(r));
    } else {
      any_generic = true;
    }
  }
  if (!any_generic) return;
  // Generic rows go through the batched hash/sign kernels block-by-block so
  // the scratch arrays stay in L1.
  uint64_t buckets[kUpdateBatchBlock];
  int8_t signs[kUpdateBatchBlock];
  for (size_t base = 0; base < n; base += kUpdateBatchBlock) {
    const size_t m = std::min(kUpdateBatchBlock, n - base);
    for (size_t r = 0; r < params_.rows; ++r) {
      if (cw4_[r] != nullptr) continue;
      hashes_[r].BucketBatch(keys + base, m, buckets);
      xis_[r]->SignBatch(keys + base, m, signs);
      double* row = Row(r);
      for (size_t i = 0; i < m; ++i) {
        row[buckets[i]] += weight * static_cast<double>(signs[i]);
      }
    }
  }
}

std::vector<double> FagmsSketch::SelfJoinRowEstimates() const {
  std::vector<double> est;
  est.reserve(params_.rows);
  for (size_t r = 0; r < params_.rows; ++r) {
    const double* row = Row(r);
    double sum = 0;
    for (size_t k = 0; k < params_.buckets; ++k) sum += row[k] * row[k];
    est.push_back(sum);
  }
  return est;
}

std::vector<double> FagmsSketch::JoinRowEstimates(
    const FagmsSketch& other) const {
  if (!CompatibleWith(other)) {
    throw std::invalid_argument("join of incompatible F-AGMS sketches");
  }
  std::vector<double> est;
  est.reserve(params_.rows);
  for (size_t r = 0; r < params_.rows; ++r) {
    const double* a = Row(r);
    const double* b = other.Row(r);
    double sum = 0;
    for (size_t k = 0; k < params_.buckets; ++k) sum += a[k] * b[k];
    est.push_back(sum);
  }
  return est;
}

double FagmsSketch::EstimateSelfJoin() const {
  return Median(SelfJoinRowEstimates());
}

double FagmsSketch::EstimateJoin(const FagmsSketch& other) const {
  return Median(JoinRowEstimates(other));
}

double FagmsSketch::EstimateFrequency(uint64_t key) const {
  std::vector<double> est;
  est.reserve(params_.rows);
  for (size_t r = 0; r < params_.rows; ++r) {
    est.push_back(static_cast<double>(xis_[r]->Sign(key)) *
                  Row(r)[hashes_[r].Bucket(key)]);
  }
  return Median(std::move(est));
}

void FagmsSketch::Merge(const FagmsSketch& other) {
  if (!CompatibleWith(other)) {
    throw std::invalid_argument("merge of incompatible F-AGMS sketches");
  }
  SKETCHSAMPLE_METRIC_INC("sketch.fagms.merges");
  for (size_t k = 0; k < counters_.size(); ++k) {
    counters_[k] += other.counters_[k];
  }
}

size_t FagmsSketch::MemoryBytes() const {
  // AlignedCounterBytes includes the 64-byte-line padding the aligned
  // allocator actually reserves; process-global dispatch-table state is
  // accounted once in the metrics registry ("simd.dispatch_state_bytes"),
  // not per sketch.
  size_t bytes = AlignedCounterBytes(counters_.size()) +
                 hashes_.size() * sizeof(PairwiseHash);
  for (const auto& xi : xis_) bytes += xi->MemoryBytes();
  return bytes;
}

bool FagmsSketch::CompatibleWith(const FagmsSketch& other) const {
  return params_.rows == other.params_.rows &&
         params_.buckets == other.params_.buckets &&
         params_.scheme == other.params_.scheme &&
         params_.seed == other.params_.seed;
}

}  // namespace sketchsample

namespace sketchsample {

void FagmsSketch::LoadCounters(std::vector<double> counters) {
  if (counters.size() != counters_.size()) {
    throw std::invalid_argument("counter payload size mismatch");
  }
  // Copy into the aligned allocation rather than adopting the buffer: the
  // counter array must keep its 64-byte alignment guarantee.
  counters_.assign(counters.begin(), counters.end());
}

}  // namespace sketchsample
