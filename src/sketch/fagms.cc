#include "src/sketch/fagms.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "src/prng/cw.h"
#include "src/prng/materialized.h"
#include "src/prng/mersenne61.h"
#include "src/util/metrics.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace sketchsample {

namespace {
constexpr uint64_t kHashSeedStream = 0xfa11;
constexpr uint64_t kXiSeedStream = 0xfa22;

// ±weight via the IEEE sign bit: flipping the sign bit is exact negation
// for every double, so XorSign(w, flip63) produces bit-for-bit the same
// value as w * (1 - 2*bit) while replacing an int→double convert and a
// multiply with one XOR on the integer side. `flip63` carries the sign
// choice in bit 63 (all other bits must be zero).
inline double XorSign(double w, uint64_t flip63) {
  uint64_t bits;
  std::memcpy(&bits, &w, sizeof(bits));
  bits ^= flip63;
  double out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

// Parity of (h mod p) for any 64-bit lazy residue h, delivered in bit 63.
// One fold leaves f = Fold61(h) <= 2^61 + 6 < 2p with f ≡ h (mod p); the
// canonical value is f or f - p, and since p is odd the subtraction flips
// the parity exactly when f >= p, i.e. when (f + 1) >> 61 is 1. XORing that
// carry bit into f's low bit gives the canonical parity with no compare.
inline uint64_t SignFlipBit63(uint64_t h) {
  const uint64_t f = Fold61(h);
  return (f ^ ((f + 1) >> 61)) << 63;
}

// Fused bucket+sign kernel for the CW4 configuration (the reference family
// of the variance analysis, and the most expensive ξ evaluation): both the
// degree-1 bucket polynomial and the degree-3 sign polynomial are evaluated
// in one pass over the keys with branch-free lazy Mersenne arithmetic
// (bounds in mersenne61.h), sharing one key fold and scattering directly
// into the counter row. 6-way interleaving gives the out-of-order core
// independent Horner chains to overlap — the kernel runs near multiplier
// throughput (~6 ns/key on a 2.1 GHz Xeon, vs ~20 ns scalar). The result is
// bit-identical to Bucket()/Sign() per key in order, so scalar and batch
// sketches match exactly.
void FusedCw4Row(const PairwiseHash& hash, const uint64_t* c,
                 const uint64_t* keys, size_t n, double weight, double* row) {
  // Everything loop-invariant is copied into locals: the counter scatter
  // stores would otherwise force reloads of the hash fields each iteration.
  const uint64_t a = hash.multiplier(), b = hash.offset();
  const uint64_t d = hash.num_buckets();
  const uint64_t magic = hash.magic();
  const uint32_t shift = hash.magic_shift();
  const uint64_t c0 = c[0], c1 = c[1], c2 = c[2], c3 = c[3];
  if (d == 1) {
    // Degenerate single-bucket row: every key lands in bucket 0.
    for (size_t i = 0; i < n; ++i) {
      const uint64_t x = Fold61(keys[i]);
      uint64_t h = MulMod61Lazy(c3, x) + c2;
      h = MulMod61Lazy(h, x) + c1;
      h = MulMod61Lazy(h, x) + c0;
      row[0] += XorSign(weight, SignFlipBit63(h));
    }
    return;
  }
  // Same exact remainder as PairwiseHash::FastModBuckets (x < 2^61); the
  // d == 1 mask case is handled above, so the mask is dropped here.
  const auto fastmod = [magic, shift, d](uint64_t x) -> uint64_t {
    const uint64_t q = static_cast<uint64_t>(
                           (static_cast<__uint128_t>(magic) * x) >> 64) >>
                       shift;
    return x - q * d;
  };
  constexpr size_t kWay = 6;
  size_t i = 0;
  for (; i + kWay <= n; i += kWay) {
    uint64_t x[kWay], g[kWay], h[kWay], bucket[kWay];
    for (size_t k = 0; k < kWay; ++k) x[k] = Fold61(keys[i + k]);
    for (size_t k = 0; k < kWay; ++k) g[k] = MulMod61Lazy(a, x[k]) + b;
    for (size_t k = 0; k < kWay; ++k) h[k] = MulMod61Lazy(c3, x[k]) + c2;
    for (size_t k = 0; k < kWay; ++k) h[k] = MulMod61Lazy(h[k], x[k]) + c1;
    for (size_t k = 0; k < kWay; ++k) h[k] = MulMod61Lazy(h[k], x[k]) + c0;
    for (size_t k = 0; k < kWay; ++k) bucket[k] = fastmod(CanonMod61(g[k]));
    for (size_t k = 0; k < kWay; ++k) {
      row[bucket[k]] += XorSign(weight, SignFlipBit63(h[k]));
    }
  }
  for (; i < n; ++i) {
    const uint64_t x = Fold61(keys[i]);
    const uint64_t bucket = fastmod(CanonMod61(MulMod61Lazy(a, x) + b));
    uint64_t h = MulMod61Lazy(c3, x) + c2;
    h = MulMod61Lazy(h, x) + c1;
    h = MulMod61Lazy(h, x) + c0;
    row[bucket] += XorSign(weight, SignFlipBit63(h));
  }
}
}  // namespace

FagmsSketch::FagmsSketch(const SketchParams& params) : params_(params) {
  if (params.rows == 0 || params.buckets == 0) {
    throw std::invalid_argument("F-AGMS sketch needs rows >= 1, buckets >= 1");
  }
  hashes_.reserve(params.rows);
  xis_.reserve(params.rows);
  for (size_t r = 0; r < params.rows; ++r) {
    hashes_.emplace_back(MixSeed(params.seed, kHashSeedStream + r),
                         params.buckets);
    const uint64_t seed = MixSeed(params.seed, kXiSeedStream + r);
    xis_.push_back(params.materialize_domain > 0
                       ? MakeMaterializedXiFamily(params.scheme, seed,
                                                  params.materialize_domain)
                       : MakeXiFamily(params.scheme, seed));
  }
  cw4_.reserve(params.rows);
  for (const auto& xi : xis_) {
    cw4_.push_back(dynamic_cast<const Cw4Xi*>(xi.get()));
  }
  counters_.assign(params.rows * params.buckets, 0.0);
}

void FagmsSketch::Update(uint64_t key, double weight) {
  SKETCHSAMPLE_METRIC_INC("sketch.fagms.updates");
  for (size_t r = 0; r < params_.rows; ++r) {
    const uint64_t bucket = hashes_[r].Bucket(key);
    Row(r)[bucket] += weight * static_cast<double>(xis_[r]->Sign(key));
  }
}

void FagmsSketch::UpdateBatch(const uint64_t* keys, size_t n, double weight) {
  SKETCHSAMPLE_METRIC_ADD("sketch.fagms.updates", n);
  SKETCHSAMPLE_METRIC_INC("sketch.fagms.batch_updates");
  // Fused rows take the whole batch in one kernel call: the fused path needs
  // no scratch arrays, so there is no reason to pay the block-loop overhead.
  // Counters are per-row accumulators, so processing rows (and blocks) in any
  // order leaves each counter's addition sequence — and hence its bits —
  // unchanged.
  bool any_generic = false;
  for (size_t r = 0; r < params_.rows; ++r) {
    if (cw4_[r] != nullptr) {
      FusedCw4Row(hashes_[r], cw4_[r]->coefficients(), keys, n, weight,
                  Row(r));
    } else {
      any_generic = true;
    }
  }
  if (!any_generic) return;
  // Generic rows go through the batched hash/sign kernels block-by-block so
  // the scratch arrays stay in L1.
  uint64_t buckets[kUpdateBatchBlock];
  int8_t signs[kUpdateBatchBlock];
  for (size_t base = 0; base < n; base += kUpdateBatchBlock) {
    const size_t m = std::min(kUpdateBatchBlock, n - base);
    for (size_t r = 0; r < params_.rows; ++r) {
      if (cw4_[r] != nullptr) continue;
      hashes_[r].BucketBatch(keys + base, m, buckets);
      xis_[r]->SignBatch(keys + base, m, signs);
      double* row = Row(r);
      for (size_t i = 0; i < m; ++i) {
        row[buckets[i]] += weight * static_cast<double>(signs[i]);
      }
    }
  }
}

std::vector<double> FagmsSketch::SelfJoinRowEstimates() const {
  std::vector<double> est;
  est.reserve(params_.rows);
  for (size_t r = 0; r < params_.rows; ++r) {
    const double* row = Row(r);
    double sum = 0;
    for (size_t k = 0; k < params_.buckets; ++k) sum += row[k] * row[k];
    est.push_back(sum);
  }
  return est;
}

std::vector<double> FagmsSketch::JoinRowEstimates(
    const FagmsSketch& other) const {
  if (!CompatibleWith(other)) {
    throw std::invalid_argument("join of incompatible F-AGMS sketches");
  }
  std::vector<double> est;
  est.reserve(params_.rows);
  for (size_t r = 0; r < params_.rows; ++r) {
    const double* a = Row(r);
    const double* b = other.Row(r);
    double sum = 0;
    for (size_t k = 0; k < params_.buckets; ++k) sum += a[k] * b[k];
    est.push_back(sum);
  }
  return est;
}

double FagmsSketch::EstimateSelfJoin() const {
  return Median(SelfJoinRowEstimates());
}

double FagmsSketch::EstimateJoin(const FagmsSketch& other) const {
  return Median(JoinRowEstimates(other));
}

double FagmsSketch::EstimateFrequency(uint64_t key) const {
  std::vector<double> est;
  est.reserve(params_.rows);
  for (size_t r = 0; r < params_.rows; ++r) {
    est.push_back(static_cast<double>(xis_[r]->Sign(key)) *
                  Row(r)[hashes_[r].Bucket(key)]);
  }
  return Median(std::move(est));
}

void FagmsSketch::Merge(const FagmsSketch& other) {
  if (!CompatibleWith(other)) {
    throw std::invalid_argument("merge of incompatible F-AGMS sketches");
  }
  SKETCHSAMPLE_METRIC_INC("sketch.fagms.merges");
  for (size_t k = 0; k < counters_.size(); ++k) {
    counters_[k] += other.counters_[k];
  }
}

size_t FagmsSketch::MemoryBytes() const {
  size_t bytes = counters_.size() * sizeof(double) +
                 hashes_.size() * sizeof(PairwiseHash);
  for (const auto& xi : xis_) bytes += xi->MemoryBytes();
  return bytes;
}

bool FagmsSketch::CompatibleWith(const FagmsSketch& other) const {
  return params_.rows == other.params_.rows &&
         params_.buckets == other.params_.buckets &&
         params_.scheme == other.params_.scheme &&
         params_.seed == other.params_.seed;
}

}  // namespace sketchsample

namespace sketchsample {

void FagmsSketch::LoadCounters(std::vector<double> counters) {
  if (counters.size() != counters_.size()) {
    throw std::invalid_argument("counter payload size mismatch");
  }
  counters_ = std::move(counters);
}

}  // namespace sketchsample
