#include "src/sketch/countmin.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "src/util/metrics.h"
#include "src/util/rng.h"

namespace sketchsample {

namespace {
constexpr uint64_t kHashSeedStream = 0xc311;
}  // namespace

CountMinSketch::CountMinSketch(const SketchParams& params) : params_(params) {
  if (params.rows == 0 || params.buckets == 0) {
    throw std::invalid_argument(
        "Count-Min sketch needs rows >= 1, buckets >= 1");
  }
  hashes_.reserve(params.rows);
  for (size_t r = 0; r < params.rows; ++r) {
    hashes_.emplace_back(MixSeed(params.seed, kHashSeedStream + r),
                         params.buckets);
  }
  counters_.assign(params.rows * params.buckets, 0.0);
}

void CountMinSketch::Update(uint64_t key, double weight) {
  SKETCHSAMPLE_METRIC_INC("sketch.countmin.updates");
  for (size_t r = 0; r < params_.rows; ++r) {
    Row(r)[hashes_[r].Bucket(key)] += weight;
  }
}

void CountMinSketch::UpdateBatch(const uint64_t* keys, size_t n,
                                 double weight) {
  SKETCHSAMPLE_METRIC_ADD("sketch.countmin.updates", n);
  SKETCHSAMPLE_METRIC_INC("sketch.countmin.batch_updates");
  uint64_t buckets[kUpdateBatchBlock];
  for (size_t base = 0; base < n; base += kUpdateBatchBlock) {
    const size_t m = std::min(kUpdateBatchBlock, n - base);
    for (size_t r = 0; r < params_.rows; ++r) {
      hashes_[r].BucketBatch(keys + base, m, buckets);
      double* row = Row(r);
      for (size_t i = 0; i < m; ++i) row[buckets[i]] += weight;
    }
  }
}

void CountMinSketch::UpdateConservative(uint64_t key, double weight) {
  if (weight < 0.0) {
    throw std::invalid_argument(
        "conservative update does not support deletions");
  }
  const double target = EstimateFrequency(key) + weight;
  for (size_t r = 0; r < params_.rows; ++r) {
    double& counter = Row(r)[hashes_[r].Bucket(key)];
    counter = std::max(counter, target);
  }
}

double CountMinSketch::EstimateFrequency(uint64_t key) const {
  double best = std::numeric_limits<double>::infinity();
  for (size_t r = 0; r < params_.rows; ++r) {
    best = std::min(best, Row(r)[hashes_[r].Bucket(key)]);
  }
  return best;
}

double CountMinSketch::EstimateSelfJoin() const {
  double best = std::numeric_limits<double>::infinity();
  for (size_t r = 0; r < params_.rows; ++r) {
    const double* row = Row(r);
    double sum = 0;
    for (size_t k = 0; k < params_.buckets; ++k) sum += row[k] * row[k];
    best = std::min(best, sum);
  }
  return best;
}

double CountMinSketch::EstimateJoin(const CountMinSketch& other) const {
  if (!CompatibleWith(other)) {
    throw std::invalid_argument("join of incompatible Count-Min sketches");
  }
  double best = std::numeric_limits<double>::infinity();
  for (size_t r = 0; r < params_.rows; ++r) {
    const double* a = Row(r);
    const double* b = other.Row(r);
    double sum = 0;
    for (size_t k = 0; k < params_.buckets; ++k) sum += a[k] * b[k];
    best = std::min(best, sum);
  }
  return best;
}

void CountMinSketch::Merge(const CountMinSketch& other) {
  if (!CompatibleWith(other)) {
    throw std::invalid_argument("merge of incompatible Count-Min sketches");
  }
  SKETCHSAMPLE_METRIC_INC("sketch.countmin.merges");
  for (size_t k = 0; k < counters_.size(); ++k) {
    counters_[k] += other.counters_[k];
  }
}

bool CountMinSketch::CompatibleWith(const CountMinSketch& other) const {
  return params_.rows == other.params_.rows &&
         params_.buckets == other.params_.buckets &&
         params_.seed == other.params_.seed;
}

}  // namespace sketchsample

namespace sketchsample {

void CountMinSketch::LoadCounters(std::vector<double> counters) {
  if (counters.size() != counters_.size()) {
    throw std::invalid_argument("counter payload size mismatch");
  }
  // Copy into the aligned allocation (64-byte guarantee, aligned.h).
  counters_.assign(counters.begin(), counters.end());
}

}  // namespace sketchsample
