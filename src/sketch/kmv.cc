#include "src/sketch/kmv.h"

#include <stdexcept>
#include <utility>

#include "src/util/metrics.h"
#include "src/util/rng.h"

namespace sketchsample {

KmvSketch::KmvSketch(size_t k, uint64_t seed) : k_(k), seed_(seed) {
  if (k < 2) {
    throw std::invalid_argument("KMV needs k >= 2");
  }
}

uint64_t KmvSketch::Hash(uint64_t key) const {
  // Strong 64-bit mixing of (seed, key); collision probability 2^-64 is
  // negligible against the estimator's own ~1/sqrt(k) error.
  return MixSeed(seed_, key);
}

void KmvSketch::Update(uint64_t key) {
  SKETCHSAMPLE_METRIC_INC("sketch.kmv.updates");
  const uint64_t h = Hash(key);
  if (minima_.size() < k_) {
    minima_.insert(h);
    return;
  }
  const auto largest = std::prev(minima_.end());
  if (h < *largest && minima_.insert(h).second) {
    minima_.erase(std::prev(minima_.end()));
  }
}

double KmvSketch::EstimateDistinct() const {
  if (minima_.size() < k_) {
    // Fewer than k distinct hashes: the retained count is exact.
    return static_cast<double>(minima_.size());
  }
  // u = normalized k-th minimum; (k-1)/u is the unbiased estimator.
  const double kth = static_cast<double>(*std::prev(minima_.end()));
  const double u = (kth + 1.0) / 18446744073709551616.0;  // / 2^64
  return static_cast<double>(k_ - 1) / u;
}

void KmvSketch::LoadMinima(const std::vector<uint64_t>& minima) {
  if (minima.size() > k_) {
    throw std::invalid_argument("KMV load exceeds k retained values");
  }
  std::set<uint64_t> loaded;
  for (size_t i = 0; i < minima.size(); ++i) {
    if (i > 0 && minima[i] <= minima[i - 1]) {
      throw std::invalid_argument("KMV load requires strictly ascending hashes");
    }
    loaded.insert(loaded.end(), minima[i]);
  }
  minima_ = std::move(loaded);
}

void KmvSketch::Merge(const KmvSketch& other) {
  if (!CompatibleWith(other)) {
    throw std::invalid_argument("merge of incompatible KMV sketches");
  }
  SKETCHSAMPLE_METRIC_INC("sketch.kmv.merges");
  for (uint64_t h : other.minima_) {
    minima_.insert(h);
  }
  while (minima_.size() > k_) {
    minima_.erase(std::prev(minima_.end()));
  }
}

KeyedKmvSketch::KeyedKmvSketch(size_t k, uint64_t seed)
    : k_(k), seed_(seed) {
  if (k < 2) {
    throw std::invalid_argument("keyed KMV needs k >= 2");
  }
}

void KeyedKmvSketch::Update(uint64_t key) {
  SKETCHSAMPLE_METRIC_INC("sketch.kmv.keyed_updates");
  const uint64_t h = MixSeed(seed_, key);
  const auto it = entries_.find(h);
  if (it != entries_.end()) {
    // Same hash implies same key (collisions are 2^-64 events, negligible
    // against the estimator's own error); the key has been retained since
    // its first occurrence, so counting keeps the weight exact.
    ++it->second.weight;
    return;
  }
  if (entries_.size() < k_) {
    entries_.emplace(h, Entry{h, key, 1});
    return;
  }
  const auto largest = std::prev(entries_.end());
  if (h < largest->first) {
    entries_.erase(largest);
    entries_.emplace(h, Entry{h, key, 1});
  }
  // An evicted key can never re-enter: its hash is above the threshold and
  // the threshold only shrinks — which is what keeps retained weights exact.
}

double KeyedKmvSketch::EstimateDistinct() const {
  if (entries_.size() < k_) {
    return static_cast<double>(entries_.size());
  }
  return static_cast<double>(k_ - 1) / Threshold01();
}

double KeyedKmvSketch::Threshold01() const {
  if (entries_.size() < k_) return 1.0;
  const double kth = static_cast<double>(std::prev(entries_.end())->first);
  return (kth + 1.0) / 18446744073709551616.0;  // / 2^64
}

std::vector<KeyedKmvSketch::Entry> KeyedKmvSketch::Entries() const {
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const auto& [hash, entry] : entries_) out.push_back(entry);
  return out;
}

void KeyedKmvSketch::LoadEntries(const std::vector<Entry>& entries) {
  if (entries.size() > k_) {
    throw std::invalid_argument("keyed KMV load exceeds k retained entries");
  }
  std::map<uint64_t, Entry> loaded;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0 && entries[i].hash <= entries[i - 1].hash) {
      throw std::invalid_argument(
          "keyed KMV load requires strictly ascending hashes");
    }
    if (entries[i].weight == 0) {
      throw std::invalid_argument("keyed KMV load with zero weight");
    }
    loaded.emplace_hint(loaded.end(), entries[i].hash, entries[i]);
  }
  entries_ = std::move(loaded);
}

void KeyedKmvSketch::Merge(const KeyedKmvSketch& other) {
  if (!CompatibleWith(other)) {
    throw std::invalid_argument("merge of incompatible keyed KMV sketches");
  }
  SKETCHSAMPLE_METRIC_INC("sketch.kmv.keyed_merges");
  for (const auto& [hash, entry] : other.entries_) {
    const auto it = entries_.find(hash);
    if (it != entries_.end()) {
      it->second.weight += entry.weight;
    } else {
      entries_.emplace(hash, entry);
    }
  }
  while (entries_.size() > k_) {
    entries_.erase(std::prev(entries_.end()));
  }
}

}  // namespace sketchsample
