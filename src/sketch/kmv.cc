#include "src/sketch/kmv.h"

#include <stdexcept>
#include <utility>

#include "src/util/metrics.h"
#include "src/util/rng.h"

namespace sketchsample {

KmvSketch::KmvSketch(size_t k, uint64_t seed) : k_(k), seed_(seed) {
  if (k < 2) {
    throw std::invalid_argument("KMV needs k >= 2");
  }
}

uint64_t KmvSketch::Hash(uint64_t key) const {
  // Strong 64-bit mixing of (seed, key); collision probability 2^-64 is
  // negligible against the estimator's own ~1/sqrt(k) error.
  return MixSeed(seed_, key);
}

void KmvSketch::Update(uint64_t key) {
  SKETCHSAMPLE_METRIC_INC("sketch.kmv.updates");
  const uint64_t h = Hash(key);
  if (minima_.size() < k_) {
    minima_.insert(h);
    return;
  }
  const auto largest = std::prev(minima_.end());
  if (h < *largest && minima_.insert(h).second) {
    minima_.erase(std::prev(minima_.end()));
  }
}

double KmvSketch::EstimateDistinct() const {
  if (minima_.size() < k_) {
    // Fewer than k distinct hashes: the retained count is exact.
    return static_cast<double>(minima_.size());
  }
  // u = normalized k-th minimum; (k-1)/u is the unbiased estimator.
  const double kth = static_cast<double>(*std::prev(minima_.end()));
  const double u = (kth + 1.0) / 18446744073709551616.0;  // / 2^64
  return static_cast<double>(k_ - 1) / u;
}

void KmvSketch::LoadMinima(const std::vector<uint64_t>& minima) {
  if (minima.size() > k_) {
    throw std::invalid_argument("KMV load exceeds k retained values");
  }
  std::set<uint64_t> loaded;
  for (size_t i = 0; i < minima.size(); ++i) {
    if (i > 0 && minima[i] <= minima[i - 1]) {
      throw std::invalid_argument("KMV load requires strictly ascending hashes");
    }
    loaded.insert(loaded.end(), minima[i]);
  }
  minima_ = std::move(loaded);
}

void KmvSketch::Merge(const KmvSketch& other) {
  if (!CompatibleWith(other)) {
    throw std::invalid_argument("merge of incompatible KMV sketches");
  }
  SKETCHSAMPLE_METRIC_INC("sketch.kmv.merges");
  for (uint64_t h : other.minima_) {
    minima_.insert(h);
  }
  while (minima_.size() > k_) {
    minima_.erase(std::prev(minima_.end()));
  }
}

}  // namespace sketchsample
