// TPC-H-lite: a from-scratch substitute for the TPC-H scale-1 dataset.
//
// The paper's without-replacement experiments (Figs 7-8) run on TPC-H:
// the join lineitem ⋈ orders on orderkey and the second frequency moment of
// lineitem.l_orderkey. We do not ship the TPC-H generator; instead this
// module reproduces the only property those experiments depend on — the
// frequency vector of the join key:
//
//   * orders has exactly one row per orderkey (frequency 1);
//   * lineitem has between 1 and 7 rows per orderkey, uniformly distributed
//     (this is dbgen's l_orderkey multiplicity law; SF-1 yields 1.5M orders
//     and ~6M lineitems, average multiplicity 4).
//
// Orderkeys are densely numbered here; dbgen's sparse numbering is
// irrelevant in the frequency domain. The substitution is recorded in
// DESIGN.md §2.
#ifndef SKETCHSAMPLE_DATA_TPCH_LITE_H_
#define SKETCHSAMPLE_DATA_TPCH_LITE_H_

#include <cstdint>
#include <vector>

#include "src/data/frequency_vector.h"
#include "src/util/rng.h"

namespace sketchsample {

/// The two generated relations, reduced to their join-key columns, plus the
/// corresponding frequency vectors.
struct TpchLiteData {
  /// orders.o_orderkey tuple stream, shuffled into random order.
  std::vector<uint64_t> orders;
  /// lineitem.l_orderkey tuple stream, shuffled into random order.
  std::vector<uint64_t> lineitem;
  FrequencyVector orders_freq;
  FrequencyVector lineitem_freq;
};

/// Number of orders at a given scale factor (TPC-H: 1.5M at SF 1).
uint64_t TpchLiteOrderCount(double scale_factor);

/// Generates the dataset. `scale_factor` 1.0 matches the paper's SF-1 run
/// (1.5M orders, ~6M lineitems); the bench defaults use ~0.05 for speed.
/// The tuple streams come pre-shuffled because the WOR estimators assume a
/// random scan order (§VI-C).
TpchLiteData GenerateTpchLite(double scale_factor, uint64_t seed);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_DATA_TPCH_LITE_H_
