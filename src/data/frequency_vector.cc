#include "src/data/frequency_vector.h"

#include <algorithm>

namespace sketchsample {

FrequencyVector FrequencyVector::FromStream(
    const std::vector<uint64_t>& values, size_t domain_size) {
  size_t needed = domain_size;
  for (uint64_t v : values) {
    needed = std::max(needed, static_cast<size_t>(v) + 1);
  }
  FrequencyVector fv(needed);
  for (uint64_t v : values) fv.Add(v);
  return fv;
}

double FrequencyVector::F1() const {
  double s = 0;
  for (uint64_t c : counts_) s += static_cast<double>(c);
  return s;
}

double FrequencyVector::F2() const {
  double s = 0;
  for (uint64_t c : counts_) {
    const double d = static_cast<double>(c);
    s += d * d;
  }
  return s;
}

double FrequencyVector::F3() const {
  double s = 0;
  for (uint64_t c : counts_) {
    const double d = static_cast<double>(c);
    s += d * d * d;
  }
  return s;
}

double FrequencyVector::F4() const {
  double s = 0;
  for (uint64_t c : counts_) {
    const double d = static_cast<double>(c);
    s += d * d * d * d;
  }
  return s;
}

size_t FrequencyVector::DistinctValues() const {
  size_t n = 0;
  for (uint64_t c : counts_) n += (c > 0);
  return n;
}

std::vector<uint64_t> FrequencyVector::ToTupleStream() const {
  std::vector<uint64_t> out;
  out.reserve(static_cast<size_t>(F1()));
  for (size_t i = 0; i < counts_.size(); ++i) {
    for (uint64_t k = 0; k < counts_[i]; ++k) out.push_back(i);
  }
  return out;
}

JoinStatistics ComputeJoinStatistics(const FrequencyVector& f,
                                     const FrequencyVector& g) {
  JoinStatistics s;
  const size_t dom = std::max(f.domain_size(), g.domain_size());
  for (size_t i = 0; i < dom; ++i) {
    const double fi =
        i < f.domain_size() ? static_cast<double>(f.count(i)) : 0.0;
    const double gi =
        i < g.domain_size() ? static_cast<double>(g.count(i)) : 0.0;
    const double fi2 = fi * fi;
    const double gi2 = gi * gi;
    s.f1 += fi;
    s.f2 += fi2;
    s.f3 += fi2 * fi;
    s.f4 += fi2 * fi2;
    s.g1 += gi;
    s.g2 += gi2;
    s.g3 += gi2 * gi;
    s.g4 += gi2 * gi2;
    s.fg += fi * gi;
    s.fg2 += fi * gi2;
    s.f2g += fi2 * gi;
    s.f2g2 += fi2 * gi2;
  }
  return s;
}

double ExactJoinSize(const FrequencyVector& f, const FrequencyVector& g) {
  const size_t dom = std::min(f.domain_size(), g.domain_size());
  double s = 0;
  for (size_t i = 0; i < dom; ++i) {
    s += static_cast<double>(f.count(i)) * static_cast<double>(g.count(i));
  }
  return s;
}

double ExactSelfJoinSize(const FrequencyVector& f) { return f.F2(); }

}  // namespace sketchsample
