// Zipfian data generation (the paper's synthetic workload, §VII).
//
// The experiments use streams of 10M-100M tuples drawn from a Zipf
// distribution over a 1M-value domain with coefficient z in [0, 5]. Two
// construction modes are provided:
//
//   * deterministic expected-frequency vectors (ZipfFrequencies): the true
//     aggregate values are then exact functions of z, which is what the
//     variance-decomposition experiments (Figs 1-2) need;
//   * a tuple-at-a-time sampler (ZipfSampler, alias method): what the
//     stream-facing experiments and examples use.
#ifndef SKETCHSAMPLE_DATA_ZIPF_H_
#define SKETCHSAMPLE_DATA_ZIPF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/data/frequency_vector.h"
#include "src/util/rng.h"

namespace sketchsample {

/// Normalized Zipf probabilities p_i ∝ 1/(i+1)^skew over [0, domain_size).
/// skew = 0 is uniform. domain_size must be >= 1.
std::vector<double> ZipfProbabilities(size_t domain_size, double skew);

/// Deterministic frequency vector with counts ≈ total_tuples · p_i, rounded
/// by the largest-remainder method so the counts sum to exactly
/// total_tuples. Rank order is by value (value 0 is the most frequent).
FrequencyVector ZipfFrequencies(size_t domain_size, uint64_t total_tuples,
                                double skew);

/// Frequency vector of `total_tuples` i.i.d. Zipf draws (multinomial
/// counts). This matches the paper's §VII setup where the two join relations
/// are "generated completely independent": two calls with different seeds
/// give independent relations with the same marginal distribution, unlike
/// the deterministic ZipfFrequencies which always returns the same vector.
FrequencyVector ZipfMultinomialFrequencies(size_t domain_size,
                                           uint64_t total_tuples, double skew,
                                           uint64_t seed);

/// O(1)-per-draw sampler from a Zipf distribution via Walker's alias method.
/// Construction is O(domain_size).
class ZipfSampler {
 public:
  ZipfSampler(size_t domain_size, double skew);

  /// Draws one value in [0, domain_size).
  uint64_t Next(Xoshiro256& rng) const;

  /// Draws a stream of `n` i.i.d. values.
  std::vector<uint64_t> Stream(size_t n, Xoshiro256& rng) const;

  size_t domain_size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;     // alias-method acceptance probabilities
  std::vector<uint32_t> alias_;  // alias targets
};

/// Fisher-Yates shuffle of a tuple stream (used to realize random-order
/// scans, the WOR prerequisite of §VI-C).
void Shuffle(std::vector<uint64_t>& values, Xoshiro256& rng);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_DATA_ZIPF_H_
