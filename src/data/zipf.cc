#include "src/data/zipf.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace sketchsample {

std::vector<double> ZipfProbabilities(size_t domain_size, double skew) {
  if (domain_size == 0) {
    throw std::invalid_argument("Zipf domain must be non-empty");
  }
  std::vector<double> p(domain_size);
  double norm = 0;
  for (size_t i = 0; i < domain_size; ++i) {
    p[i] = std::pow(static_cast<double>(i + 1), -skew);
    norm += p[i];
  }
  for (double& x : p) x /= norm;
  return p;
}

FrequencyVector ZipfFrequencies(size_t domain_size, uint64_t total_tuples,
                                double skew) {
  const std::vector<double> p = ZipfProbabilities(domain_size, skew);
  std::vector<uint64_t> counts(domain_size);
  std::vector<std::pair<double, size_t>> remainders;
  remainders.reserve(domain_size);
  uint64_t assigned = 0;
  for (size_t i = 0; i < domain_size; ++i) {
    const double exact = p[i] * static_cast<double>(total_tuples);
    counts[i] = static_cast<uint64_t>(exact);
    assigned += counts[i];
    remainders.emplace_back(exact - std::floor(exact), i);
  }
  // Hand the leftover tuples to the values with the largest remainders.
  uint64_t leftover = total_tuples - assigned;
  std::partial_sort(
      remainders.begin(),
      remainders.begin() +
          std::min<size_t>(leftover, remainders.size()),
      remainders.end(), std::greater<>());
  for (uint64_t k = 0; k < leftover; ++k) {
    ++counts[remainders[k % remainders.size()].second];
  }
  return FrequencyVector(std::move(counts));
}

FrequencyVector ZipfMultinomialFrequencies(size_t domain_size,
                                           uint64_t total_tuples, double skew,
                                           uint64_t seed) {
  ZipfSampler sampler(domain_size, skew);
  Xoshiro256 rng(seed);
  FrequencyVector fv(domain_size);
  for (uint64_t k = 0; k < total_tuples; ++k) fv.Add(sampler.Next(rng));
  return fv;
}

ZipfSampler::ZipfSampler(size_t domain_size, double skew) {
  const std::vector<double> p = ZipfProbabilities(domain_size, skew);
  const size_t n = p.size();
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  // Walker/Vose alias construction.
  std::vector<double> scaled(n);
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = p[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

uint64_t ZipfSampler::Next(Xoshiro256& rng) const {
  const uint64_t column = rng.NextBounded(prob_.size());
  return rng.NextDouble() < prob_[column] ? column : alias_[column];
}

std::vector<uint64_t> ZipfSampler::Stream(size_t n, Xoshiro256& rng) const {
  std::vector<uint64_t> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Next(rng));
  return out;
}

void Shuffle(std::vector<uint64_t>& values, Xoshiro256& rng) {
  for (size_t i = values.size(); i > 1; --i) {
    const size_t j = rng.NextBounded(i);
    std::swap(values[i - 1], values[j]);
  }
}

}  // namespace sketchsample
