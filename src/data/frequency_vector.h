// Frequency vectors and the frequency-domain statistics the analysis needs.
//
// The paper's entire analysis lives in the frequency domain: a relation F
// with join attribute A over domain I is summarized by the vector (f_i), the
// number of tuples with A = i. Every closed-form variance in the paper
// (Eqs 6-28) is a polynomial in a small set of frequency statistics; this
// module computes all of them in one pass.
#ifndef SKETCHSAMPLE_DATA_FREQUENCY_VECTOR_H_
#define SKETCHSAMPLE_DATA_FREQUENCY_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sketchsample {

/// Dense frequency vector over domain [0, domain_size).
///
/// Frequencies are stored as uint64 counts. The class also materializes the
/// relation as a tuple stream (the multiset {i repeated f_i times}) for
/// driving samplers and sketches.
class FrequencyVector {
 public:
  FrequencyVector() = default;

  /// Zero vector over a domain.
  explicit FrequencyVector(size_t domain_size) : counts_(domain_size, 0) {}

  /// Adopts explicit counts.
  explicit FrequencyVector(std::vector<uint64_t> counts)
      : counts_(std::move(counts)) {}

  /// Builds the vector by counting a stream of values; the domain becomes
  /// max(value)+1 unless `domain_size` is larger.
  static FrequencyVector FromStream(const std::vector<uint64_t>& values,
                                    size_t domain_size = 0);

  size_t domain_size() const { return counts_.size(); }
  uint64_t count(size_t i) const { return counts_[i]; }
  void set_count(size_t i, uint64_t c) { counts_[i] = c; }
  void Add(size_t i, uint64_t c = 1) { counts_[i] += c; }
  const std::vector<uint64_t>& counts() const { return counts_; }

  /// Total number of tuples, Σ f_i (a.k.a. F1, the relation size |F|).
  double F1() const;
  /// Second frequency moment Σ f_i² — the self-join size.
  double F2() const;
  /// Third frequency moment Σ f_i³.
  double F3() const;
  /// Fourth frequency moment Σ f_i⁴.
  double F4() const;
  /// Number of distinct values with f_i > 0 (F0).
  size_t DistinctValues() const;

  /// Expands to the tuple stream {i repeated f_i times}, in value order.
  /// Use Shuffle on the result (or tpch/zipf helpers) for random-order scans.
  std::vector<uint64_t> ToTupleStream() const;

 private:
  std::vector<uint64_t> counts_;
};

/// All cross statistics of a pair (f, g) that appear in the size-of-join
/// variance formulas, computed in one pass over the common domain (the
/// shorter vector is implicitly zero-padded).
struct JoinStatistics {
  double f1 = 0, f2 = 0, f3 = 0, f4 = 0;  ///< moments of f
  double g1 = 0, g2 = 0, g3 = 0, g4 = 0;  ///< moments of g
  double fg = 0;      ///< Σ f_i g_i — the size of join
  double fg2 = 0;     ///< Σ f_i g_i²
  double f2g = 0;     ///< Σ f_i² g_i
  double f2g2 = 0;    ///< Σ f_i² g_i²

  /// Σ_i Σ_{j≠i} a_i b_j = (Σa)(Σb) − Σ a_i b_i, for the off-diagonal double
  /// sums in Eqs 25, 27, 28.
  static double OffDiagonal(double sum_a, double sum_b, double diag) {
    return sum_a * sum_b - diag;
  }
};

/// Computes JoinStatistics for a pair of frequency vectors.
JoinStatistics ComputeJoinStatistics(const FrequencyVector& f,
                                     const FrequencyVector& g);

/// Exact size of join Σ f_i g_i.
double ExactJoinSize(const FrequencyVector& f, const FrequencyVector& g);

/// Exact self-join size Σ f_i² (equals f.F2()).
double ExactSelfJoinSize(const FrequencyVector& f);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_DATA_FREQUENCY_VECTOR_H_
