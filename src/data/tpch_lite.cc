#include "src/data/tpch_lite.h"

#include <algorithm>

#include "src/data/zipf.h"

namespace sketchsample {

uint64_t TpchLiteOrderCount(double scale_factor) {
  const double orders = 1500000.0 * scale_factor;
  return orders < 1.0 ? 1 : static_cast<uint64_t>(orders);
}

TpchLiteData GenerateTpchLite(double scale_factor, uint64_t seed) {
  const uint64_t num_orders = TpchLiteOrderCount(scale_factor);
  Xoshiro256 rng(MixSeed(seed, 0x7c9));

  TpchLiteData data;
  data.orders_freq = FrequencyVector(num_orders);
  data.lineitem_freq = FrequencyVector(num_orders);
  data.orders.reserve(num_orders);
  for (uint64_t key = 0; key < num_orders; ++key) {
    data.orders_freq.set_count(key, 1);
    const uint64_t multiplicity = 1 + rng.NextBounded(7);  // uniform 1..7
    data.lineitem_freq.set_count(key, multiplicity);
    data.orders.push_back(key);
  }
  data.lineitem = data.lineitem_freq.ToTupleStream();

  Shuffle(data.orders, rng);
  Shuffle(data.lineitem, rng);
  return data;
}

}  // namespace sketchsample
