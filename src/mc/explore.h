// DFS exploration driver over Scheduler runs (src/mc/sched.h).
//
// Explore() re-executes the spec, maintaining a persistent decision stack;
// each iteration forces the deepest decision with an untried alternative
// to that alternative and replays the prefix (stateless DFS). Schedule
// alternatives come from DPOR backtrack sets (or all enabled threads with
// `full_branching`); read-from alternatives are always fully enumerated.
//
// Termination: exploration is exhaustive up to `max_steps` per run and
// `max_runs` total. `Result::complete` is true only when the decision tree
// was drained with no run truncated — for the repo's specs at smoke-test
// bounds this is "bounded exhaustive" in the CHESS sense.
#ifndef SKETCHSAMPLE_MC_EXPLORE_H_
#define SKETCHSAMPLE_MC_EXPLORE_H_

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/mc/sched.h"

namespace sketchsample::mc {

/// Handed to the spec body; spawns model threads and joins them.
class Env {
 public:
  /// Starts a model thread; runnable immediately.
  void Spawn(std::function<void()> body) {
    Scheduler::Current()->Spawn(std::move(body));
  }
  /// Waits (from the spec body, model thread 0) for every spawned thread.
  void Join() { Scheduler::Current()->Join(); }
};

struct Options {
  /// Hard cap on schedules explored; hit => Result::complete is false.
  size_t max_runs = 200000;
  /// Per-run operation budget; exceeding it truncates the run (bounds
  /// spin-forever schedules under stale reads).
  size_t max_steps = 20000;
  /// Explore every enabled thread at every schedule point instead of DPOR
  /// backtrack sets. Exponentially slower; cross-validation only.
  bool full_branching = false;
  /// Optional one-notch memory-order weakening (mutation suite).
  const Mutation* mutation = nullptr;
  /// When `replay` is set, run exactly one schedule following
  /// `replay_trace` (a Result::decisions vector) instead of exploring.
  bool replay = false;
  std::vector<size_t> replay_trace;
};

struct Result {
  /// True iff some schedule violated a spec assertion, raced, or
  /// deadlocked.
  bool found = false;
  std::string message;
  /// Human-readable operation trace of the violating schedule (generated
  /// by deterministically re-running it with logging on).
  std::string report;
  /// The violating schedule's decision vector; feed back via
  /// Options::replay_trace to reproduce deterministically.
  std::vector<size_t> decisions;
  size_t runs = 0;
  /// Decision tree drained and no run truncated.
  bool complete = false;
  size_t truncated_runs = 0;
  /// Union of (var, op, declared order) sites seen — pre-mutation — for
  /// the mutation suite to enumerate.
  std::vector<CensusEntry> census;
};

Result Explore(const std::function<void(Env&)>& spec, const Options& opts);
inline Result Explore(const std::function<void(Env&)>& spec) {
  return Explore(spec, Options{});
}

}  // namespace sketchsample::mc

#endif  // SKETCHSAMPLE_MC_EXPLORE_H_
