// Instrumented atomics: the model checker's twin of StdAtomics
// (src/util/atomics_policy.h). Instantiating a policy-parameterized
// primitive with `mc::McAtomics` routes every load/store/RMW/fence through
// the scheduler (src/mc/sched.h), which records it, explores its schedule
// and read-from alternatives, and race-checks the Plain cells around it.
//
// Values are stored bit-cast into uint64_t, so T must be trivially
// copyable and at most 8 bytes (pointers, integers, enums — everything the
// production protocols use).
#ifndef SKETCHSAMPLE_MC_ATOMIC_H_
#define SKETCHSAMPLE_MC_ATOMIC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <utility>

#include "src/mc/sched.h"
#include "src/util/atomics_policy.h"

namespace sketchsample::mc {

namespace detail {

template <typename T>
uint64_t ToBits(T value) {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "mc::atomic requires a trivially copyable T of at most 8 "
                "bytes");
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(T));
  return bits;
}

template <typename T>
T FromBits(uint64_t bits) {
  T value;
  std::memcpy(&value, &bits, sizeof(T));
  return value;
}

}  // namespace detail

/// Instrumented atomic cell. Must be constructed (and used) inside a
/// Scheduler::Run — i.e. from a spec body or a model thread.
template <typename T>
class atomic {
 public:
  atomic() : atomic(T{}, "<anon>") {}
  explicit atomic(T init) : atomic(init, "<anon>") {}
  atomic(T init, const char* name)
      : id_(Scheduler::Current()->RegisterAtomic(name, detail::ToBits(init))) {}

  atomic(const atomic&) = delete;
  atomic& operator=(const atomic&) = delete;

  T load(MemOrder order = MemOrder::kSeqCst) const {
    return detail::FromBits<T>(Scheduler::Current()->AtomicLoad(id_, order));
  }
  void store(T desired, MemOrder order = MemOrder::kSeqCst) {
    Scheduler::Current()->AtomicStore(id_, detail::ToBits(desired), order);
  }
  T exchange(T desired, MemOrder order = MemOrder::kSeqCst) {
    const uint64_t bits = detail::ToBits(desired);
    return detail::FromBits<T>(Scheduler::Current()->AtomicRmw(
        id_, order, [bits](uint64_t) { return bits; }));
  }
  T fetch_add(T delta, MemOrder order = MemOrder::kSeqCst) {
    static_assert(std::is_integral_v<T>,
                  "mc::atomic::fetch_add supports integral T only");
    const uint64_t d = detail::ToBits(delta);
    return detail::FromBits<T>(Scheduler::Current()->AtomicRmw(
        id_, order, [d](uint64_t old) {
          return detail::ToBits<T>(
              static_cast<T>(detail::FromBits<T>(old) + detail::FromBits<T>(d)));
        }));
  }
  bool compare_exchange_strong(T& expected, T desired, MemOrder success,
                               MemOrder failure) {
    uint64_t expected_bits = detail::ToBits(expected);
    const bool ok = Scheduler::Current()->AtomicCas(
        id_, expected_bits, detail::ToBits(desired), success, failure);
    expected = detail::FromBits<T>(expected_bits);
    return ok;
  }

 private:
  VarId id_;
};

/// Instrumented non-atomic cell: the checker's twin of StdAtomics::Plain.
/// Every access is race-checked against the happens-before edges the
/// surrounding protocol established.
template <typename T>
class var {
 public:
  var() : id_(Scheduler::Current()->RegisterPlain("<plain>")) {}
  explicit var(T init)
      : id_(Scheduler::Current()->RegisterPlain("<plain>")),
        value_(std::move(init)) {}
  var(T init, const char* name)
      : id_(Scheduler::Current()->RegisterPlain(name)),
        value_(std::move(init)) {}

  const T& Read() const {
    Scheduler::Current()->PlainRead(id_);
    return value_;
  }
  template <typename U>
  void Store(U&& desired) {
    Scheduler::Current()->PlainWrite(id_);
    value_ = std::forward<U>(desired);
  }
  T Take() {
    Scheduler::Current()->PlainWrite(id_);
    return std::move(value_);
  }

 private:
  VarId id_;
  T value_{};
};

inline void fence(MemOrder order) { Scheduler::Current()->Fence(order); }

/// Model-checked policy, drop-in for StdAtomics in the three primitives.
struct McAtomics {
  template <typename T>
  using Atomic = mc::atomic<T>;
  template <typename T>
  using Plain = mc::var<T>;

  static void Fence(MemOrder order) { mc::fence(order); }

  /// A scheduling point that also deprioritizes the caller, so bounded
  /// exploration does not starve the thread a spin loop waits on.
  static void Yield() { Scheduler::Current()->Yield(); }
};

/// Spec assertion: on failure the current schedule is reported as a
/// violation and replayed into a human-readable trace by the explorer.
#define MC_ASSERT(cond)                                                       \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::sketchsample::mc::Scheduler::Current()->Fail(                         \
          std::string("MC_ASSERT failed: " #cond " (") + __FILE__ + ":" +     \
          std::to_string(__LINE__) + ")");                                    \
    }                                                                         \
  } while (0)

}  // namespace sketchsample::mc

#endif  // SKETCHSAMPLE_MC_ATOMIC_H_
