// Vector clocks for the interleaving model checker.
//
// Every model thread carries a clock; every store records the clock of the
// storing thread at the moment of the store. Happens-before is the
// component-wise partial order: store S happens-before step X iff
// S.clock <= X.clock (component-wise), which the checker uses for
//   * store visibility (a load may not observe a store that is hidden
//     behind a later store to the same variable that already
//     happened-before the load), and
//   * plain-variable race detection (two accesses, at least one write,
//     neither ordered before the other).
#ifndef SKETCHSAMPLE_MC_CLOCK_H_
#define SKETCHSAMPLE_MC_CLOCK_H_

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>

namespace sketchsample::mc {

/// Upper bound on model threads per exploration (including the main spec
/// body, which runs as thread 0). Specs in this repo use 2-4; the bound is
/// a compile-time array size, not a scalability claim.
inline constexpr size_t kMaxThreads = 8;

/// Component-wise max vector clock over kMaxThreads lanes.
class VClock {
 public:
  constexpr VClock() : ticks_{} {}

  uint64_t Get(size_t tid) const { return ticks_[tid]; }
  void Set(size_t tid, uint64_t tick) { ticks_[tid] = tick; }
  void Bump(size_t tid) { ++ticks_[tid]; }

  /// this := max(this, other), component-wise (the "join" at every
  /// synchronizes-with edge).
  void Join(const VClock& other) {
    for (size_t i = 0; i < kMaxThreads; ++i) {
      ticks_[i] = std::max(ticks_[i], other.ticks_[i]);
    }
  }

  /// True iff this <= other component-wise: everything this clock has seen,
  /// `other` has also seen (this happens-before-or-equals other).
  bool LessEq(const VClock& other) const {
    for (size_t i = 0; i < kMaxThreads; ++i) {
      if (ticks_[i] > other.ticks_[i]) return false;
    }
    return true;
  }

  /// True iff the event stamped (tid, tick) happened-before a step whose
  /// clock is `other`: the step has seen at least `tick` of thread `tid`.
  static bool EventBefore(size_t tid, uint64_t tick, const VClock& other) {
    return tick <= other.Get(tid);
  }

 private:
  std::array<uint64_t, kMaxThreads> ticks_;
};

}  // namespace sketchsample::mc

#endif  // SKETCHSAMPLE_MC_CLOCK_H_
