#include "src/mc/fiber.h"

#include <stdexcept>
#include <utility>

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SKETCHSAMPLE_MC_ASAN 1
#endif
#if __has_feature(thread_sanitizer)
#define SKETCHSAMPLE_MC_FIBER_TSAN 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) && !defined(SKETCHSAMPLE_MC_ASAN)
#define SKETCHSAMPLE_MC_ASAN 1
#endif

#if defined(SKETCHSAMPLE_MC_ASAN)
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save,
                                    const void* stack_bottom,
                                    size_t stack_size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** stack_bottom_old,
                                     size_t* stack_size_old);
}
#endif

#if defined(SKETCHSAMPLE_MC_FIBER_TSAN)
extern "C" {
void* __tsan_get_current_fiber();
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif

namespace sketchsample::mc {

namespace {
// The fiber being entered by the trampoline. Single OS thread by design;
// set immediately before the swapcontext that enters the fiber.
thread_local Fiber* g_entering = nullptr;
}  // namespace

Fiber::Fiber(std::function<void()> body)
    : body_(std::move(body)), stack_(kStackBytes) {
  if (getcontext(&context_) != 0) {
    throw std::runtime_error("mc::Fiber: getcontext failed");
  }
  context_.uc_stack.ss_sp = stack_.data();
  context_.uc_stack.ss_size = stack_.size();
  context_.uc_link = nullptr;  // Trampoline never returns; it suspends.
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::Trampoline), 0);
#if defined(SKETCHSAMPLE_MC_FIBER_TSAN)
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber() {
#if defined(SKETCHSAMPLE_MC_FIBER_TSAN)
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
}

void Fiber::Trampoline() {
  Fiber* self = g_entering;
  g_entering = nullptr;
  // Completes the switch started in Resume(): tells ASan we now run on the
  // fiber stack and remember the caller's stack for the way back.
  self->SanitizerFinishSwitch(nullptr);
  self->body_();
  self->finished_ = true;
  // Final exit: pass nullptr as fake_stack_save so ASan releases the fake
  // stack for this terminating fiber instead of preserving it (leak-check
  // clean under detect_leaks=1).
  self->SanitizerStartSwitch(/*terminating=*/true, nullptr);
#if defined(SKETCHSAMPLE_MC_FIBER_TSAN)
  __tsan_switch_to_fiber(self->tsan_caller_fiber_, 0);
#endif
  swapcontext(&self->context_, &self->return_context_);
  // Unreachable: a finished fiber is never resumed.
}

void Fiber::Resume() {
#if defined(SKETCHSAMPLE_MC_FIBER_TSAN)
  tsan_caller_fiber_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
  g_entering = this;
  SanitizerStartSwitch(/*terminating=*/false, &fake_stack_resume_);
  swapcontext(&return_context_, &context_);
  // Back from the fiber (suspended or finished).
  SanitizerFinishSwitch(fake_stack_resume_);
}

void Fiber::Suspend() {
#if defined(SKETCHSAMPLE_MC_FIBER_TSAN)
  __tsan_switch_to_fiber(tsan_caller_fiber_, 0);
#endif
  SanitizerStartSwitch(/*terminating=*/false, &fake_stack_suspend_);
  swapcontext(&context_, &return_context_);
  // Resumed again by a later Resume(); the trampoline path does not run, so
  // finish the switch here.
  g_entering = nullptr;
  SanitizerFinishSwitch(fake_stack_suspend_);
}

void Fiber::SanitizerStartSwitch(bool terminating, void** fake_stack_save) {
#if defined(SKETCHSAMPLE_MC_ASAN)
  // When leaving a fiber we must hand ASan the stack we are ABOUT to run
  // on. Leaving the scheduler context -> the fiber's stack; leaving the
  // fiber -> the remembered caller stack.
  if (caller_stack_bottom_ == nullptr || fake_stack_save == &fake_stack_resume_) {
    __sanitizer_start_switch_fiber(terminating ? nullptr : fake_stack_save,
                                   stack_.data(), stack_.size());
  } else {
    __sanitizer_start_switch_fiber(terminating ? nullptr : fake_stack_save,
                                   caller_stack_bottom_, caller_stack_size_);
  }
#else
  (void)terminating;
  (void)fake_stack_save;
#endif
}

void Fiber::SanitizerFinishSwitch(void* fake_stack_save) {
#if defined(SKETCHSAMPLE_MC_ASAN)
  const void* old_bottom = nullptr;
  size_t old_size = 0;
  __sanitizer_finish_switch_fiber(fake_stack_save, &old_bottom, &old_size);
  // First entry into the fiber records the caller's (scheduler's) stack so
  // Suspend()/termination can switch ASan back to it.
  if (caller_stack_bottom_ == nullptr && old_bottom != nullptr) {
    caller_stack_bottom_ = old_bottom;
    caller_stack_size_ = old_size;
  }
#else
  (void)fake_stack_save;
#endif
}

}  // namespace sketchsample::mc
