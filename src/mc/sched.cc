#include "src/mc/sched.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace sketchsample::mc {

namespace {
thread_local Scheduler* g_current = nullptr;
constexpr size_t kNoNode = static_cast<size_t>(-1);
// The schedule node that chose the operation currently executing (kNoNode
// when only one thread was enabled, so there was no choice to revisit).
thread_local size_t g_step_node = kNoNode;
}  // namespace

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kLoad:
      return "load";
    case OpKind::kStore:
      return "store";
    case OpKind::kRmw:
      return "rmw";
    case OpKind::kFence:
      return "fence";
  }
  return "?";
}

const char* MemOrderName(MemOrder order) {
  switch (order) {
    case MemOrder::kRelaxed:
      return "relaxed";
    case MemOrder::kAcquire:
      return "acquire";
    case MemOrder::kRelease:
      return "release";
    case MemOrder::kAcqRel:
      return "acq_rel";
    case MemOrder::kSeqCst:
      return "seq_cst";
  }
  return "?";
}

MemOrder WeakenOneNotch(OpKind op, MemOrder from) {
  switch (op) {
    case OpKind::kLoad:
      if (from == MemOrder::kSeqCst) return MemOrder::kAcquire;
      if (from == MemOrder::kAcquire) return MemOrder::kRelaxed;
      return from;
    case OpKind::kStore:
      if (from == MemOrder::kSeqCst) return MemOrder::kRelease;
      if (from == MemOrder::kRelease) return MemOrder::kRelaxed;
      return from;
    case OpKind::kRmw:
      if (from == MemOrder::kSeqCst) return MemOrder::kAcqRel;
      if (from == MemOrder::kAcqRel) return MemOrder::kAcquire;
      if (from == MemOrder::kAcquire) return MemOrder::kRelaxed;
      return from;
    case OpKind::kFence:
      return from;
  }
  return from;
}

Scheduler::Scheduler() = default;
Scheduler::~Scheduler() = default;

Scheduler* Scheduler::Current() { return g_current; }

Scheduler::RunResult Scheduler::Run(const std::function<void()>& spec,
                                    const RunOptions& opts) {
  threads_.clear();
  vars_.clear();
  nodes_.clear();
  script_ = opts.script;
  script_pos_ = 0;
  steps_ = 0;
  max_steps_ = opts.max_steps;
  stale_budget_ = opts.stale_budget;
  sc_clock_ = VClock();
  aborting_ = false;
  truncated_ = false;
  violation_ = false;
  violation_message_.clear();
  mutation_ = opts.mutation;
  trace_out_ = opts.trace_out;
  census_.clear();
  current_tid_ = 0;
  live_threads_ = 0;
  g_step_node = kNoNode;

  g_current = this;
  in_run_ = true;
  Spawn(spec);  // model thread 0 is the spec body itself
  RunSchedulerLoop();
  in_run_ = false;
  g_current = nullptr;

  RunResult result;
  result.violation = violation_;
  result.truncated = truncated_;
  result.message = violation_message_;
  result.nodes = std::move(nodes_);
  result.census = census_;
  return result;
}

size_t Scheduler::Spawn(std::function<void()> body) {
  const size_t tid = threads_.size();
  if (tid >= kMaxThreads) {
    throw std::logic_error("mc: more than kMaxThreads model threads");
  }
  threads_.emplace_back();
  ThreadState& t = threads_.back();
  if (tid > 0) {
    // Thread creation happens-before the start of the created thread.
    t.clock = threads_[current_tid_].clock;
    t.causal = threads_[current_tid_].causal;
  }
  t.fiber = std::make_unique<Fiber>([this, tid, fn = std::move(body)] {
    try {
      fn();
    } catch (const McViolation& v) {
      if (!violation_) {
        violation_ = true;
        violation_message_ = v.message;
      }
      aborting_ = true;
    } catch (const McUnwind&) {
      // Truncation or a violation elsewhere; just finish.
    }
    threads_[tid].finished = true;
    --live_threads_;
  });
  ++live_threads_;
  return tid;
}

void Scheduler::Join() {
  // Model thread 0 waits for every spawned thread. EnabledTids() keeps us
  // out of the schedule while any peer is unfinished.
  while (true) {
    bool any = false;
    for (size_t i = 1; i < threads_.size(); ++i) {
      if (!threads_[i].finished) any = true;
    }
    if (!any) {
      // Thread completion happens-before the join returning.
      for (size_t i = 1; i < threads_.size(); ++i) {
        Cur().clock.Join(threads_[i].clock);
        Cur().causal.Join(threads_[i].causal);
      }
      Cur().waiting_join = false;
      return;
    }
    Cur().waiting_join = true;
    Pause();
  }
}

std::vector<size_t> Scheduler::EnabledTids() const {
  std::vector<size_t> enabled;
  for (size_t i = 0; i < threads_.size(); ++i) {
    const ThreadState& t = threads_[i];
    if (t.finished) continue;
    if (t.waiting_join) {
      bool any = false;
      for (size_t j = 1; j < threads_.size(); ++j) {
        if (!threads_[j].finished) any = true;
      }
      if (any) continue;
    }
    enabled.push_back(i);
  }
  return enabled;
}

void Scheduler::RunSchedulerLoop() {
  while (true) {
    bool all_finished = true;
    for (const ThreadState& t : threads_) {
      if (!t.finished) all_finished = false;
    }
    if (all_finished) return;

    if (aborting_) {
      // Unwind every suspended thread so fiber stacks (and the RAII state
      // on them) are torn down before the run returns; threads that never
      // started simply never ran their body. Reverse spawn order: later
      // threads borrow objects owned by earlier fibers' stacks (the spec
      // body, thread 0, owns the shared state and must die last).
      for (size_t i = threads_.size(); i-- > 0;) {
        ThreadState& t = threads_[i];
        if (t.finished) continue;
        if (!t.started) {
          t.finished = true;
          --live_threads_;
          continue;
        }
        // Do NOT pre-set t.unwinding: Pause()'s post-suspend check sees
        // aborting_ && !unwinding, arms the flag, and throws McUnwind --
        // pre-setting it would make the ops degenerate (non-pausing,
        // non-throwing) and a spin loop would hang the unwind forever.
        current_tid_ = i;
        t.fiber->Resume();  // Pause() throws McUnwind inside
      }
      return;
    }

    std::vector<size_t> enabled = EnabledTids();
    if (enabled.empty()) {
      violation_ = true;
      violation_message_ = "deadlock: no runnable model thread";
      aborting_ = true;
      continue;
    }

    // Spin-loop deprioritization: a thread that called Policy::Yield is
    // only scheduled when no non-yielded thread is runnable, so bounded
    // exploration is not spent starving the thread a spinner waits on.
    std::vector<size_t> preferred;
    for (size_t tid : enabled) {
      if (!threads_[tid].yielded) preferred.push_back(tid);
    }
    if (preferred.empty()) {
      for (size_t tid : enabled) threads_[tid].yielded = false;
      preferred = enabled;
    }

    size_t tid;
    if (preferred.size() > 1) {
      tid = NextDecision(/*is_read=*/false, preferred);
      g_step_node = nodes_.size() - 1;
    } else {
      tid = preferred[0];
      g_step_node = kNoNode;
    }

    current_tid_ = tid;
    ThreadState& t = threads_[tid];
    t.yielded = false;
    t.started = true;
    t.fiber->Resume();
  }
}

size_t Scheduler::NextDecision(bool is_read, std::vector<size_t> options) {
  Node node;
  node.is_read = is_read;
  node.options = std::move(options);
  if (script_pos_ < script_.size()) {
    node.chosen_index = script_[script_pos_];
    if (node.chosen_index >= node.options.size()) {
      // A stale script (edited spec) — clamp rather than crash; the
      // explorer treats the run as fresh from here on.
      node.chosen_index = 0;
    }
    ++script_pos_;
  } else {
    node.chosen_index = 0;
  }
  node.done.push_back(node.chosen_index);
  if (full_branching_ || is_read) {
    for (size_t i = 0; i < node.options.size(); ++i) node.backtrack.push_back(i);
  } else {
    node.backtrack.push_back(node.chosen_index);
  }
  const size_t chosen = node.options[node.chosen_index];
  nodes_.push_back(std::move(node));
  return chosen;
}

void Scheduler::Pause() {
  if (aborting_) {
    if (!Cur().unwinding) {
      Cur().unwinding = true;
    }
    throw McUnwind{};
  }
  ++steps_;
  if (steps_ > max_steps_) {
    truncated_ = true;
    aborting_ = true;
    Cur().unwinding = true;
    throw McUnwind{};
  }
  Cur().fiber->Suspend();
  if (aborting_ && !Cur().unwinding) {
    // Resumed only to unwind.
    Cur().unwinding = true;
    throw McUnwind{};
  }
}

void Scheduler::Yield() {
  if (Cur().unwinding) return;
  Cur().yielded = true;
  Pause();
}

void Scheduler::Fail(std::string message) {
  // Arm degenerate mode before throwing so destructors that run while this
  // exception unwinds (and later, while peers unwind) execute their mc ops
  // without pausing or branching.
  aborting_ = true;
  Cur().unwinding = true;
  throw McViolation{std::move(message)};
}

VarId Scheduler::RegisterAtomic(const char* name, uint64_t init) {
  VarState var;
  var.name = name != nullptr ? name : "<anon>";
  var.is_atomic = true;
  Store s;
  s.value = init;
  s.tid = current_tid_;
  s.tick = 0;  // initial store happens-before everything
  var.history.push_back(std::move(s));
  vars_.push_back(std::move(var));
  return vars_.size() - 1;
}

VarId Scheduler::RegisterPlain(const char* name) {
  VarState var;
  var.name = name != nullptr ? name : "<anon>";
  var.is_atomic = false;
  vars_.push_back(std::move(var));
  return vars_.size() - 1;
}

void Scheduler::RecordCensus(VarId id, OpKind op, MemOrder order) {
  CensusEntry entry{vars_[id].name, op, order};
  auto it = std::lower_bound(census_.begin(), census_.end(), entry);
  if (it == census_.end() || !(*it == entry)) census_.insert(it, entry);
}

MemOrder Scheduler::EffectiveOrder(VarId id, OpKind op, MemOrder order) {
  RecordCensus(id, op, order);
  if (mutation_ != nullptr && mutation_->op == op &&
      mutation_->from == order && mutation_->var == vars_[id].name) {
    return WeakenOneNotch(op, order);
  }
  return order;
}

void Scheduler::ScJoin(MemOrder order) {
  if (order != MemOrder::kSeqCst) return;
  // Over-approximation: the single total order S over seq_cst operations
  // is the execution order of this schedule, and S edges are treated as
  // synchronization. Sound (never invents an impossible behavior), may
  // miss behaviors where S legally disagrees with the execution order.
  // Deliberately NOT joined into the causal clock: different execution
  // orders are how the explorer covers different S orders, so DPOR must
  // keep treating seq_cst ops on different variables as reorderable.
  Cur().clock.Join(sc_clock_);
  sc_clock_.Join(Cur().clock);
}

std::vector<size_t> Scheduler::VisibleStores(const VarState& var) const {
  const VClock& clock = threads_[current_tid_].clock;
  // A store is hidden if a newer store (same variable, modification order)
  // already happens-before this load. Find the newest store that
  // happens-before us: everything older is hidden.
  size_t floor = var.last_read[current_tid_];
  for (size_t i = var.history.size(); i-- > 0;) {
    const Store& s = var.history[i];
    if (VClock::EventBefore(s.tid, s.tick, clock)) {
      floor = std::max(floor, i);
      break;
    }
  }
  // Stale-read budget: once this thread has re-read the same stale store
  // stale_budget_ times in a row, only the newest store is offered, so
  // spin loops cannot branch into unboundedly many redundant chains.
  if (var.stale_count[current_tid_] >= stale_budget_) {
    return {var.history.size() - 1};
  }
  std::vector<size_t> visible;
  for (size_t i = var.history.size(); i-- > floor;) visible.push_back(i);
  if (visible.empty()) visible.push_back(var.history.size() - 1);
  return visible;
}

void Scheduler::ApplyAcquire(VarState& var, const Store& store, bool acquire) {
  (void)var;
  if (acquire) {
    Cur().clock.Join(store.release_clock);
    Cur().causal.Join(store.causal_release);
  } else {
    // Banked: a later acquire fence turns this relaxed load into an
    // acquire of everything it read.
    Cur().acq_pending.Join(store.release_clock);
    Cur().acq_pending_causal.Join(store.causal_release);
  }
}

void Scheduler::PushStore(VarState& var, uint64_t value, bool release,
                          const Store* rmw_read_from) {
  Store s;
  s.value = value;
  s.tid = current_tid_;
  s.tick = Cur().clock.Get(current_tid_);
  s.hb = Cur().clock;
  if (release) {
    s.release_clock = Cur().clock;
    s.causal_release = Cur().causal;
  } else {
    // A relaxed store after a release fence carries the fence's clock.
    s.release_clock = Cur().rel_fence;
    s.causal_release = Cur().rel_fence_causal;
  }
  if (rmw_read_from != nullptr) {
    // RMWs continue the release sequence of the store they read.
    s.release_clock.Join(rmw_read_from->release_clock);
    s.causal_release.Join(rmw_read_from->causal_release);
  }
  var.history.push_back(std::move(s));
}

void Scheduler::DporUpdate(VarId id, bool is_write) {
  VarState& var = vars_[id];
  const size_t tid = current_tid_;
  // Concurrency is judged on the CAUSAL clock: the S-order edges in the
  // full clock would make every pair of seq_cst ops look ordered and
  // suppress exactly the backtrack points that cover other S orders.
  const VClock& clock = Cur().causal;
  auto mark = [&](const VarState::Access& access) {
    if (!access.valid || access.tid == tid) return;
    if (access.clock.LessEq(clock)) return;  // already causally ordered
    if (access.node_index == kNoNode) return;
    Node& node = nodes_[access.node_index];
    auto it = std::find(node.options.begin(), node.options.end(), tid);
    if (it != node.options.end()) {
      size_t idx = static_cast<size_t>(it - node.options.begin());
      if (std::find(node.backtrack.begin(), node.backtrack.end(), idx) ==
          node.backtrack.end()) {
        node.backtrack.push_back(idx);
      }
    } else {
      node.backtrack.clear();
      for (size_t i = 0; i < node.options.size(); ++i) {
        node.backtrack.push_back(i);
      }
    }
  };
  mark(var.last_write);
  if (is_write) {
    for (const auto& read : var.last_reads) mark(read);
  }
  VarState::Access access;
  access.valid = true;
  access.tid = tid;
  access.node_index = g_step_node;
  access.is_write = is_write;
  access.clock = clock;
  if (is_write) {
    var.last_write = access;
    for (auto& read : var.last_reads) read.valid = false;
  } else {
    var.last_reads[tid] = access;
  }
}

void Scheduler::Trace(const std::string& line) {
  if (trace_out_ != nullptr) trace_out_->push_back(line);
}

uint64_t Scheduler::AtomicLoad(VarId id, MemOrder order) {
  if (Cur().unwinding) return vars_[id].history.back().value;
  const MemOrder eff = EffectiveOrder(id, OpKind::kLoad, order);
  Pause();
  Cur().clock.Bump(current_tid_);
  Cur().causal.Bump(current_tid_);
  ScJoin(eff);
  VarState& var = vars_[id];
  std::vector<size_t> visible = VisibleStores(var);
  size_t index = visible.size() > 1
                     ? NextDecision(/*is_read=*/true, visible)
                     : visible[0];
  if (index == var.last_read[current_tid_] &&
      index + 1 < var.history.size()) {
    ++var.stale_count[current_tid_];
  } else {
    var.stale_count[current_tid_] = 0;
  }
  var.last_read[current_tid_] = std::max(var.last_read[current_tid_], index);
  const Store& store = var.history[index];
  // DPOR before the acquire join: concurrency with the last write must be
  // judged at the pre-state. Joining first would make every reads-from
  // pair look ordered and prune the read-before-write reversal.
  DporUpdate(id, /*is_write=*/false);
  ApplyAcquire(var, store,
               eff == MemOrder::kAcquire || eff == MemOrder::kSeqCst);
  if (trace_out_ != nullptr) {
    std::ostringstream os;
    os << "T" << current_tid_ << " " << var.name << " load(" << MemOrderName(eff)
       << ") -> " << store.value << " [store #" << index << " by T"
       << store.tid << "]";
    Trace(os.str());
  }
  return store.value;
}

void Scheduler::AtomicStore(VarId id, uint64_t value, MemOrder order) {
  if (Cur().unwinding) {
    VarState& var = vars_[id];
    Store s;
    s.value = value;
    s.tid = current_tid_;
    s.tick = Cur().clock.Get(current_tid_);
    s.hb = Cur().clock;
    var.history.push_back(std::move(s));
    return;
  }
  const MemOrder eff = EffectiveOrder(id, OpKind::kStore, order);
  Pause();
  Cur().clock.Bump(current_tid_);
  Cur().causal.Bump(current_tid_);
  ScJoin(eff);
  VarState& var = vars_[id];
  PushStore(var, value, eff == MemOrder::kRelease || eff == MemOrder::kSeqCst,
            nullptr);
  DporUpdate(id, /*is_write=*/true);
  if (trace_out_ != nullptr) {
    std::ostringstream os;
    os << "T" << current_tid_ << " " << var.name << " store("
       << MemOrderName(eff) << ") <- " << value;
    Trace(os.str());
  }
}

uint64_t Scheduler::AtomicRmw(VarId id, MemOrder order,
                              const std::function<uint64_t(uint64_t)>& op) {
  VarState& var = vars_[id];
  if (Cur().unwinding) {
    const uint64_t old = var.history.back().value;
    Store s;
    s.value = op(old);
    s.tid = current_tid_;
    s.tick = Cur().clock.Get(current_tid_);
    s.hb = Cur().clock;
    var.history.push_back(std::move(s));
    return old;
  }
  const MemOrder eff = EffectiveOrder(id, OpKind::kRmw, order);
  Pause();
  Cur().clock.Bump(current_tid_);
  Cur().causal.Bump(current_tid_);
  ScJoin(eff);
  // Atomicity: an RMW always reads the latest store in modification order.
  const Store read_from = var.history.back();
  var.last_read[current_tid_] =
      std::max(var.last_read[current_tid_], var.history.size() - 1);
  var.stale_count[current_tid_] = 0;
  DporUpdate(id, /*is_write=*/true);  // pre-state, before the acquire join
  ApplyAcquire(var, read_from,
               eff == MemOrder::kAcquire || eff == MemOrder::kAcqRel ||
                   eff == MemOrder::kSeqCst);
  const uint64_t new_value = op(read_from.value);
  PushStore(var, new_value,
            eff == MemOrder::kRelease || eff == MemOrder::kAcqRel ||
                eff == MemOrder::kSeqCst,
            &read_from);
  if (trace_out_ != nullptr) {
    std::ostringstream os;
    os << "T" << current_tid_ << " " << var.name << " rmw(" << MemOrderName(eff)
       << ") " << read_from.value << " -> " << new_value;
    Trace(os.str());
  }
  return read_from.value;
}

bool Scheduler::AtomicCas(VarId id, uint64_t& expected, uint64_t desired,
                          MemOrder success, MemOrder failure) {
  VarState& var = vars_[id];
  if (Cur().unwinding) {
    const uint64_t old = var.history.back().value;
    if (old != expected) {
      expected = old;
      return false;
    }
    Store s;
    s.value = desired;
    s.tid = current_tid_;
    s.tick = Cur().clock.Get(current_tid_);
    s.hb = Cur().clock;
    var.history.push_back(std::move(s));
    return true;
  }
  const MemOrder eff_success = EffectiveOrder(id, OpKind::kRmw, success);
  Pause();
  Cur().clock.Bump(current_tid_);
  Cur().causal.Bump(current_tid_);
  // A strong CAS is an atomic RMW: it reads the latest store whether or
  // not the comparison succeeds.
  const Store read_from = var.history.back();
  var.last_read[current_tid_] =
      std::max(var.last_read[current_tid_], var.history.size() - 1);
  var.stale_count[current_tid_] = 0;
  if (read_from.value != expected) {
    ScJoin(failure);
    DporUpdate(id, /*is_write=*/false);  // pre-state, before the join
    ApplyAcquire(var, read_from,
                 failure == MemOrder::kAcquire || failure == MemOrder::kAcqRel ||
                     failure == MemOrder::kSeqCst);
    expected = read_from.value;
    if (trace_out_ != nullptr) {
      std::ostringstream os;
      os << "T" << current_tid_ << " " << var.name << " cas-fail("
         << MemOrderName(failure) << ") saw " << read_from.value;
      Trace(os.str());
    }
    return false;
  }
  ScJoin(eff_success);
  DporUpdate(id, /*is_write=*/true);  // pre-state, before the join
  ApplyAcquire(var, read_from,
               eff_success == MemOrder::kAcquire ||
                   eff_success == MemOrder::kAcqRel ||
                   eff_success == MemOrder::kSeqCst);
  PushStore(var, desired,
            eff_success == MemOrder::kRelease ||
                eff_success == MemOrder::kAcqRel ||
                eff_success == MemOrder::kSeqCst,
            &read_from);
  if (trace_out_ != nullptr) {
    std::ostringstream os;
    os << "T" << current_tid_ << " " << var.name << " cas-ok("
       << MemOrderName(eff_success) << ") " << read_from.value << " -> "
       << desired;
    Trace(os.str());
  }
  return true;
}

void Scheduler::Fence(MemOrder order) {
  if (Cur().unwinding) return;
  CensusEntry entry{"<fence>", OpKind::kFence, order};
  auto it = std::lower_bound(census_.begin(), census_.end(), entry);
  if (it == census_.end() || !(*it == entry)) census_.insert(it, entry);
  Pause();
  Cur().clock.Bump(current_tid_);
  Cur().causal.Bump(current_tid_);
  ScJoin(order);
  if (order == MemOrder::kRelease || order == MemOrder::kAcqRel ||
      order == MemOrder::kSeqCst) {
    Cur().rel_fence.Join(Cur().clock);
    Cur().rel_fence_causal.Join(Cur().causal);
  }
  if (order == MemOrder::kAcquire || order == MemOrder::kAcqRel ||
      order == MemOrder::kSeqCst) {
    Cur().clock.Join(Cur().acq_pending);
    Cur().causal.Join(Cur().acq_pending_causal);
  }
  if (trace_out_ != nullptr) {
    std::ostringstream os;
    os << "T" << current_tid_ << " fence(" << MemOrderName(order) << ")";
    Trace(os.str());
  }
}

void Scheduler::PlainRead(VarId id) {
  if (Cur().unwinding) return;
  Cur().clock.Bump(current_tid_);
  Cur().causal.Bump(current_tid_);
  VarState& var = vars_[id];
  if (var.written &&
      !VClock::EventBefore(var.write_tid, var.write_tick, Cur().clock) &&
      var.write_tid != current_tid_) {
    Fail("data race on '" + var.name + "': read by T" +
         std::to_string(current_tid_) + " concurrent with write by T" +
         std::to_string(var.write_tid));
  }
  var.read_tick[current_tid_] = Cur().clock.Get(current_tid_);
  if (trace_out_ != nullptr) {
    Trace("T" + std::to_string(current_tid_) + " " + var.name + " plain-read");
  }
}

void Scheduler::PlainWrite(VarId id) {
  if (Cur().unwinding) return;
  Cur().clock.Bump(current_tid_);
  Cur().causal.Bump(current_tid_);
  VarState& var = vars_[id];
  if (var.written &&
      !VClock::EventBefore(var.write_tid, var.write_tick, Cur().clock) &&
      var.write_tid != current_tid_) {
    Fail("data race on '" + var.name + "': write by T" +
         std::to_string(current_tid_) + " concurrent with write by T" +
         std::to_string(var.write_tid));
  }
  for (size_t t = 0; t < kMaxThreads; ++t) {
    if (t == current_tid_ || var.read_tick[t] == 0) continue;
    if (!VClock::EventBefore(t, var.read_tick[t], Cur().clock)) {
      Fail("data race on '" + var.name + "': write by T" +
           std::to_string(current_tid_) + " concurrent with read by T" +
           std::to_string(t));
    }
  }
  var.written = true;
  var.write_tid = current_tid_;
  var.write_tick = Cur().clock.Get(current_tid_);
  var.read_tick.fill(0);
  if (trace_out_ != nullptr) {
    Trace("T" + std::to_string(current_tid_) + " " + var.name + " plain-write");
  }
}

}  // namespace sketchsample::mc
