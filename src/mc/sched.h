// The model checker's heart: a deterministic cooperative scheduler plus a
// C++11-memory-model simulator over instrumented atomics.
//
// One *run* executes the spec function with every model thread on a fiber
// (src/mc/fiber.h), pausing at each atomic operation. Two kinds of decision
// are recorded on a stack:
//
//   * schedule nodes — which enabled thread executes the next operation;
//   * read-from nodes — which store in the variable's modification-order
//     history a load observes (newest first). Enumerating the legally
//     visible stores is what simulates store buffers: a relaxed or acquire
//     load may observe any store not hidden by a newer store that already
//     happens-before the load.
//
// The explorer (src/mc/explore.h) re-executes the spec, forcing one
// recorded decision to its next alternative each time (stateless DFS).
// Schedule alternatives are pruned by a conservative dynamic partial-order
// reduction: a thread is added to an earlier node's backtrack set only when
// it executes an operation conflicting with the last concurrent access to
// the same variable (Flanagan & Godefroid 2005, the non-clairvoyant
// variant: if the thread was not enabled at that node, all enabled threads
// are added).
//
// Happens-before is tracked with vector clocks (src/mc/clock.h):
// release-store / acquire-load edges join clocks, release sequences are
// continued by RMWs, fences are modeled with a per-thread pending-release
// clock (release fence arms subsequent relaxed stores) and pending-acquire
// clock (relaxed loads bank the store's release clock; an acquire fence
// collects it). seq_cst is over-approximated by a global SC clock joined at
// every seq_cst operation — the simulated total order S is the execution
// order, a sound restriction (it can miss exotic S orders, never invent
// impossible ones; see docs/STATIC_ANALYSIS.md).
//
// Non-atomic protocol data (Policy::Plain cells) is race-checked against
// the happens-before edges the surrounding atomics actually established;
// a race is reported as a violation with both access sites.
#ifndef SKETCHSAMPLE_MC_SCHED_H_
#define SKETCHSAMPLE_MC_SCHED_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/mc/clock.h"
#include "src/mc/fiber.h"
#include "src/util/atomics_policy.h"

namespace sketchsample::mc {

/// Operation kinds, for census entries and mutation targeting.
enum class OpKind { kLoad, kStore, kRmw, kFence };

const char* OpKindName(OpKind kind);
const char* MemOrderName(MemOrder order);

/// One (site, order) occurrence observed during exploration. The mutation
/// suite enumerates these to know which weakenings are meaningful.
struct CensusEntry {
  std::string var;
  OpKind op;
  MemOrder order;

  bool operator==(const CensusEntry& other) const {
    return var == other.var && op == other.op && order == other.order;
  }
  bool operator<(const CensusEntry& other) const {
    if (var != other.var) return var < other.var;
    if (op != other.op) return op < other.op;
    return order < other.order;
  }
};

/// A single one-notch memory-order weakening, applied to every dynamic
/// occurrence of (var, op) whose declared order matches `from`:
///   load:  seq_cst -> acquire -> relaxed
///   store: seq_cst -> release -> relaxed
///   rmw:   seq_cst -> acq_rel (then acq_rel -> acquire -> relaxed)
struct Mutation {
  std::string var;
  OpKind op = OpKind::kLoad;
  MemOrder from = MemOrder::kSeqCst;
};

/// Returns the one-notch-weaker order for (op, from), or `from` itself if
/// already at the bottom of that operation's ladder.
MemOrder WeakenOneNotch(OpKind op, MemOrder from);

/// Thrown by MC_ASSERT / race detection inside a model thread.
struct McViolation {
  std::string message;
};

/// Thrown into suspended fibers to unwind them after a violation or a
/// truncated run. Never escapes the scheduler.
struct McUnwind {};

/// Identifies an instrumented variable within one run. Variables are
/// assigned ids in construction order, which the deterministic replay
/// relies on.
using VarId = size_t;

class Scheduler {
 public:
  struct RunOptions {
    /// Forced decision prefix (from the explorer). Decisions beyond the
    /// prefix take the default (first) alternative and are recorded.
    std::vector<size_t> script;
    /// Abort (truncate) any run exceeding this many scheduled operations.
    size_t max_steps = 20000;
    /// How many times in a row one thread may re-observe the same stale
    /// store of one variable while a newer store is visible. Spin loops
    /// otherwise branch into unboundedly many redundant stale-read chains;
    /// after the budget the newest store is forced. Bugs that need a stale
    /// read at all are found with budget >= 1 (the bounded-liveness
    /// assumption; see docs/STATIC_ANALYSIS.md).
    uint32_t stale_budget = 2;
    /// Optional memory-order weakening applied at matching sites.
    const Mutation* mutation = nullptr;
    /// When set, every executed operation is appended to `trace_out`.
    std::vector<std::string>* trace_out = nullptr;
  };

  /// Decision node recorded during a run.
  struct Node {
    bool is_read = false;        // read-from node vs schedule node
    std::vector<size_t> options; // tids (schedule) / store indices (read)
    size_t chosen_index = 0;     // index into options taken this run
    // Schedule nodes only: alternatives DPOR marked worth trying, and
    // alternatives already explored (indices into options).
    std::vector<size_t> backtrack;
    std::vector<size_t> done;
  };

  struct RunResult {
    bool violation = false;
    bool truncated = false;
    std::string message;
    std::vector<Node> nodes;
    std::vector<CensusEntry> census;  // sorted, deduplicated
  };

  Scheduler();
  ~Scheduler();

  /// The scheduler owning the calling model thread, or nullptr when called
  /// outside a run (production code path never has one).
  static Scheduler* Current();

  /// Executes `spec` (as model thread 0) to completion, a violation, or
  /// truncation, following `opts.script`.
  RunResult Run(const std::function<void()>& spec, const RunOptions& opts);

  /// True when exploration should explore all schedule alternatives at
  /// every node instead of DPOR backtrack sets (cross-validation knob).
  void set_full_branching(bool full) { full_branching_ = full; }

  // ---- called from the instrumented API (src/mc/atomic.h) ----
  VarId RegisterAtomic(const char* name, uint64_t init);
  VarId RegisterPlain(const char* name);
  uint64_t AtomicLoad(VarId id, MemOrder order);
  void AtomicStore(VarId id, uint64_t value, MemOrder order);
  /// op: returns the new value from (old, operand).
  uint64_t AtomicRmw(VarId id, MemOrder order,
                     const std::function<uint64_t(uint64_t)>& op);
  bool AtomicCas(VarId id, uint64_t& expected, uint64_t desired,
                 MemOrder success, MemOrder failure);
  void Fence(MemOrder order);
  void PlainRead(VarId id);
  void PlainWrite(VarId id);
  void Yield();
  size_t Spawn(std::function<void()> body);
  void Join();  // thread 0 only: wait for every spawned thread
  [[noreturn]] void Fail(std::string message);

 private:
  struct Store {
    uint64_t value = 0;
    size_t tid = 0;
    uint64_t tick = 0;
    VClock hb;             // storing thread's clock at the store
    VClock release_clock;  // joined by acquire loads that read this store
    // Causal analogue of release_clock: excludes the seq_cst S-order edges
    // (ScJoin). See ThreadState::causal.
    VClock causal_release;
  };

  struct VarState {
    std::string name;
    bool is_atomic = false;
    std::vector<Store> history;                    // modification order
    std::array<size_t, kMaxThreads> last_read{};   // coherence floor
    std::array<uint32_t, kMaxThreads> stale_count{};  // consecutive re-reads
    // Plain vars: last write event and per-thread read events.
    size_t write_tid = 0;
    uint64_t write_tick = 0;
    bool written = false;
    std::array<uint64_t, kMaxThreads> read_tick{};
    // DPOR: last access that could conflict (writes; and reads, for
    // write-after-read conflicts).
    struct Access {
      bool valid = false;
      size_t tid = 0;
      size_t node_index = 0;  // schedule node that chose this access
      bool is_write = false;
      VClock clock;
    };
    Access last_write;
    std::array<Access, kMaxThreads> last_reads;
  };

  struct ThreadState {
    std::unique_ptr<Fiber> fiber;
    VClock clock;
    VClock rel_fence;    // armed by a release fence, consumed by stores
    VClock acq_pending;  // banked by relaxed loads, joined by acquire fence
    // Causal clock: tracks true synchronization only (program order,
    // acquire/release, fences, spawn/join) and deliberately excludes the
    // ScJoin S-order edges. DPOR's "already ordered" pruning test uses it:
    // two seq_cst operations on different variables are S-ordered in one
    // execution order, but the REVERSED execution order is a different
    // legal S — pruning the reversal because of the S edge would silently
    // skip those behaviors (and did, before this clock existed; the
    // regression lives in tests/mc_model_test.cc). Bumped in lockstep with
    // `clock`, so per-thread ticks agree between the two.
    VClock causal;
    VClock rel_fence_causal;
    VClock acq_pending_causal;
    bool started = false;
    bool finished = false;
    bool yielded = false;
    bool waiting_join = false;
    bool unwinding = false;
  };

  size_t CurrentTid() const { return current_tid_; }
  ThreadState& Cur() { return threads_[current_tid_]; }

  /// Suspends the current thread and lets the scheduler pick the next one.
  /// Every atomic op calls this first; this is where schedule nodes are
  /// recorded and where McUnwind is thrown during abort.
  void Pause();
  size_t NextDecision(bool is_read, std::vector<size_t> options);
  void RunSchedulerLoop();
  std::vector<size_t> EnabledTids() const;
  void AbortAndUnwind();
  void RecordCensus(VarId id, OpKind op, MemOrder order);
  MemOrder EffectiveOrder(VarId id, OpKind op, MemOrder order);
  void DporUpdate(VarId id, bool is_write);
  std::vector<size_t> VisibleStores(const VarState& var) const;
  void ApplyAcquire(VarState& var, const Store& store, bool acquire);
  void PushStore(VarState& var, uint64_t value, bool release,
                 const Store* rmw_read_from);
  void ScJoin(MemOrder order);
  void Trace(const std::string& line);

  std::vector<ThreadState> threads_;
  std::vector<VarState> vars_;
  std::vector<Node> nodes_;
  std::vector<size_t> script_;
  size_t script_pos_ = 0;
  size_t current_tid_ = 0;
  size_t steps_ = 0;
  size_t max_steps_ = 0;
  uint32_t stale_budget_ = 2;
  size_t live_threads_ = 0;
  VClock sc_clock_;
  bool aborting_ = false;
  bool truncated_ = false;
  bool violation_ = false;
  std::string violation_message_;
  const Mutation* mutation_ = nullptr;
  std::vector<std::string>* trace_out_ = nullptr;
  std::vector<CensusEntry> census_;
  bool full_branching_ = false;
  bool in_run_ = false;
};

}  // namespace sketchsample::mc

#endif  // SKETCHSAMPLE_MC_SCHED_H_
