#include "src/mc/explore.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace sketchsample::mc {

namespace {

void MergeCensus(std::vector<CensusEntry>& into,
                 const std::vector<CensusEntry>& from) {
  for (const CensusEntry& entry : from) {
    auto it = std::lower_bound(into.begin(), into.end(), entry);
    if (it == into.end() || !(*it == entry)) into.insert(it, entry);
  }
}

std::string BuildReport(Scheduler& sched, const std::function<void()>& body,
                        const std::vector<size_t>& script, size_t max_steps,
                        const Mutation* mutation) {
  std::vector<std::string> lines;
  Scheduler::RunOptions ro;
  ro.script = script;
  ro.max_steps = max_steps;
  ro.mutation = mutation;
  ro.trace_out = &lines;
  Scheduler::RunResult rr = sched.Run(body, ro);
  std::ostringstream os;
  os << rr.message << "\nschedule trace (" << lines.size() << " ops):\n";
  for (size_t i = 0; i < lines.size(); ++i) {
    os << "  #" << i << "  " << lines[i] << "\n";
  }
  return os.str();
}

}  // namespace

Result Explore(const std::function<void(Env&)>& spec, const Options& opts) {
  Scheduler sched;
  sched.set_full_branching(opts.full_branching);
  const std::function<void()> body = [&spec] {
    Env env;
    spec(env);
  };

  Result result;
  std::vector<Scheduler::Node> stack;  // persistent DFS decision stack
  std::vector<size_t> script = opts.replay ? opts.replay_trace
                                           : std::vector<size_t>();

  while (true) {
    Scheduler::RunOptions ro;
    ro.script = script;
    ro.max_steps = opts.max_steps;
    ro.mutation = opts.mutation;
    Scheduler::RunResult rr = sched.Run(body, ro);
    ++result.runs;
    MergeCensus(result.census, rr.census);
    if (rr.truncated) ++result.truncated_runs;

    if (rr.violation) {
      result.found = true;
      result.message = rr.message;
      result.decisions.clear();
      for (const Scheduler::Node& node : rr.nodes) {
        result.decisions.push_back(node.chosen_index);
      }
      result.report = BuildReport(sched, body, result.decisions,
                                  opts.max_steps, opts.mutation);
      return result;
    }

    if (opts.replay) {
      // Single forced schedule; no violation reproduced.
      result.complete = !rr.truncated;
      return result;
    }

    // Merge this run's decisions into the persistent stack. The prefix
    // followed `script`, so nodes align index-for-index; DPOR may have
    // added backtrack entries to prefix nodes during this run.
    const size_t common = std::min(stack.size(), rr.nodes.size());
    for (size_t i = 0; i < common; ++i) {
      for (size_t alt : rr.nodes[i].backtrack) {
        if (std::find(stack[i].backtrack.begin(), stack[i].backtrack.end(),
                      alt) == stack[i].backtrack.end()) {
          stack[i].backtrack.push_back(alt);
        }
      }
    }
    for (size_t i = stack.size(); i < rr.nodes.size(); ++i) {
      stack.push_back(rr.nodes[i]);
    }

    // Backtrack: deepest node with an untried alternative.
    bool advanced = false;
    for (size_t i = stack.size(); i-- > 0;) {
      Scheduler::Node& node = stack[i];
      size_t alt = node.options.size();
      for (size_t candidate : node.backtrack) {
        if (std::find(node.done.begin(), node.done.end(), candidate) ==
            node.done.end()) {
          alt = std::min(alt, candidate);
        }
      }
      if (alt == node.options.size()) continue;
      node.done.push_back(alt);
      node.chosen_index = alt;
      stack.resize(i + 1);
      script.clear();
      for (size_t j = 0; j <= i; ++j) script.push_back(stack[j].chosen_index);
      advanced = true;
      break;
    }
    if (!advanced) {
      result.complete = result.truncated_runs == 0;
      return result;
    }
    if (result.runs >= opts.max_runs) {
      result.complete = false;
      return result;
    }
  }
}

}  // namespace sketchsample::mc
