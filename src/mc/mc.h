// Umbrella header for the interleaving model checker.
//
//   #include "src/mc/mc.h"
//   mc::Result r = mc::Explore([](mc::Env& env) {
//     SpscQueue<int, mc::McAtomics> q(2);   // policy-parameterized primitive
//     env.Spawn([&] { int v = 1; q.TryPush(v); });
//     env.Spawn([&] { int out; q.TryPop(out); });
//     env.Join();
//     MC_ASSERT(q.SizeApprox() <= 1);
//   });
//   ASSERT_FALSE(r.found) << r.report;
//
// See docs/STATIC_ANALYSIS.md for what the checker does and does not
// prove, and tests/mc_spec_test.cc for the real specs.
#ifndef SKETCHSAMPLE_MC_MC_H_
#define SKETCHSAMPLE_MC_MC_H_

#include "src/mc/atomic.h"   // IWYU pragma: export
#include "src/mc/explore.h"  // IWYU pragma: export
#include "src/mc/sched.h"    // IWYU pragma: export

#endif  // SKETCHSAMPLE_MC_MC_H_
