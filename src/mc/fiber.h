// Cooperative fibers for the model checker's scheduler.
//
// Each model thread runs on a ucontext fiber so the scheduler can suspend
// it at every atomic operation and resume any other thread — single OS
// thread, fully deterministic, no real concurrency. The switch points are
// annotated for AddressSanitizer (and TSan, when compiled in) so the
// repo's sanitizer CI jobs can run the checker's own tests: without the
// annotations ASan's fake-stack bookkeeping corrupts on the first swap.
#ifndef SKETCHSAMPLE_MC_FIBER_H_
#define SKETCHSAMPLE_MC_FIBER_H_

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SKETCHSAMPLE_MC_FIBER_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__) && !defined(SKETCHSAMPLE_MC_FIBER_TSAN)
#define SKETCHSAMPLE_MC_FIBER_TSAN 1
#endif

namespace sketchsample::mc {

/// One suspendable execution context. The body runs until it returns or
/// calls Fiber::SwitchTo back to the scheduler context; `finished()`
/// reports body completion.
class Fiber {
 public:
  /// 256 KiB default: specs recurse shallowly, but gtest assertion
  /// machinery on the fiber stack is not free.
  static constexpr size_t kStackBytes = 256 * 1024;

  explicit Fiber(std::function<void()> body);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switches from the calling context into this fiber. Returns when the
  /// fiber switches back out (suspends or finishes).
  void Resume();

  /// Called from inside the fiber body: suspends, returning control to the
  /// context that called Resume().
  void Suspend();

  bool finished() const { return finished_; }

 private:
  static void Trampoline();

  void SanitizerStartSwitch(bool terminating, void** fake_stack_save);
  void SanitizerFinishSwitch(void* fake_stack_save);

  std::function<void()> body_;
  std::vector<unsigned char> stack_;
  ucontext_t context_{};
  ucontext_t return_context_{};
  bool finished_ = false;

  // Sanitizer bookkeeping for the two directions of the switch.
  void* fake_stack_resume_ = nullptr;
  void* fake_stack_suspend_ = nullptr;
  const void* caller_stack_bottom_ = nullptr;
  size_t caller_stack_size_ = 0;
#if defined(SKETCHSAMPLE_MC_FIBER_TSAN)
  void* tsan_fiber_ = nullptr;
  void* tsan_caller_fiber_ = nullptr;
#endif
};

}  // namespace sketchsample::mc

#endif  // SKETCHSAMPLE_MC_FIBER_H_
