// Sampling-only estimators (Props 3-6): the baseline the combined
// sketch-over-sample estimator is compared against.
//
// These operate on the *sampled* frequency vectors (exact aggregation over
// the sample, then the correction of src/core/corrections.h). They are what
// an approximate-query engine that stores samples — instead of sketching
// them — would compute.
#ifndef SKETCHSAMPLE_CORE_SAMPLING_ESTIMATORS_H_
#define SKETCHSAMPLE_CORE_SAMPLING_ESTIMATORS_H_

#include <cstdint>
#include <vector>

#include "src/data/frequency_vector.h"

namespace sketchsample {

/// Prop 3: X = (1/pq) Σ f'_i g'_i over Bernoulli samples.
double BernoulliJoinSampleEstimate(const FrequencyVector& sample_f,
                                   const FrequencyVector& sample_g, double p,
                                   double q);

/// Prop 4: X = (1/p²) Σ f'_i² − ((1−p)/p²) Σ f'_i over a Bernoulli sample.
double BernoulliSelfJoinSampleEstimate(const FrequencyVector& sample_f,
                                       double p);

/// Prop 5: X = (1/αβ) Σ f'_i g'_i over WR samples; sample sizes are read
/// from the sampled vectors, population sizes are passed in.
double WrJoinSampleEstimate(const FrequencyVector& sample_f,
                            const FrequencyVector& sample_g,
                            uint64_t population_f, uint64_t population_g);

/// §III-D: X = (1/αα₂) Σ f'_i² − |F|/α₂ over a WR sample (needs ≥2 tuples).
double WrSelfJoinSampleEstimate(const FrequencyVector& sample_f,
                                uint64_t population_f);

/// Prop 6: X = (1/αβ) Σ f'_i g'_i over WOR samples.
double WorJoinSampleEstimate(const FrequencyVector& sample_f,
                             const FrequencyVector& sample_g,
                             uint64_t population_f, uint64_t population_g);

/// §III-E: X = (1/αα₁) Σ f'_i² − ((1−α₁)/α₁)|F| over a WOR sample
/// (needs ≥2 tuples).
double WorSelfJoinSampleEstimate(const FrequencyVector& sample_f,
                                 uint64_t population_f);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_CORE_SAMPLING_ESTIMATORS_H_
