#include "src/core/confidence.h"

#include <cmath>
#include <stdexcept>

namespace sketchsample {

double NormalQuantile(double p) {
  if (!(p > 0.0) || !(p < 1.0)) {
    throw std::invalid_argument("NormalQuantile needs p in (0, 1)");
  }
  // Acklam's algorithm: piecewise rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double u = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) /
        ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double u = p - 0.5;
    const double t = u * u;
    x = (((((a[0] * t + a[1]) * t + a[2]) * t + a[3]) * t + a[4]) * t + a[5]) *
        u /
        (((((b[0] * t + b[1]) * t + b[2]) * t + b[3]) * t + b[4]) * t + 1.0);
  } else {
    const double u = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u +
          c[5]) /
        ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0);
  }
  // One Halley refinement using the normal CDF error.
  const double e = 0.5 * std::erfc(-x / std::sqrt(2.0)) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

ConfidenceInterval CltInterval(double estimate, double variance,
                               double level) {
  if (!(level > 0.0) || !(level < 1.0)) {
    throw std::invalid_argument("confidence level must be in (0, 1)");
  }
  if (variance < 0.0) {
    throw std::invalid_argument("variance must be non-negative");
  }
  const double z = NormalQuantile(0.5 + level / 2.0);
  const double half = z * std::sqrt(variance);
  return ConfidenceInterval{estimate - half, estimate + half, level};
}

ConfidenceInterval ChebyshevInterval(double estimate, double variance,
                                     double level) {
  if (!(level > 0.0) || !(level < 1.0)) {
    throw std::invalid_argument("confidence level must be in (0, 1)");
  }
  if (variance < 0.0) {
    throw std::invalid_argument("variance must be non-negative");
  }
  const double half = std::sqrt(variance / (1.0 - level));
  return ConfidenceInterval{estimate - half, estimate + half, level};
}

}  // namespace sketchsample
