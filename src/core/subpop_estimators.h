// Subpopulation-weight estimation over the keyed bottom-k sketch
// (Cohen–Kaplan, "Tighter estimation using bottom k sketches",
// arXiv:0802.3448), composed with the paper's Bernoulli load shedding.
//
// A bottom-k sketch retains the k distinct keys with the smallest hashes —
// a uniform sample of the distinct keys that can be filtered by *any*
// predicate chosen after the stream has passed. With the k-th smallest
// hash at normalized position u, each of the other k−1 retained keys is a
// distinct key that survived a u-probability inclusion test, so the
// Horvitz–Thompson sum Σ w_i / u over the retained keys matching the
// predicate estimates the total weight of the matching subpopulation.
//
// Two error sources stack (the composition the source paper does not
// analyze):
//   1. bottom-k sampling of distinct keys, variance (1−u)/u² · Σ w_i²
//      over the matching sample (Cohen–Kaplan's conditional variance for
//      priority/bottom-k sampling with the threshold fixed at u);
//   2. Bernoulli shedding at realized rate p̂ upstream of the sketch: each
//      pre-shed occurrence reaches the sketch independently with
//      probability p, so the kept weight of the subpopulation is
//      Binomial(W, p) and scaling by 1/p̂ adds W(1−p̂)/p̂ of variance.
// Intervals come from the same CLT machinery as the join estimators
// (src/core/confidence.h), keeping /query/subpop consistent with
// /query/selfjoin error reporting.
#ifndef SKETCHSAMPLE_CORE_SUBPOP_ESTIMATORS_H_
#define SKETCHSAMPLE_CORE_SUBPOP_ESTIMATORS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/core/confidence.h"
#include "src/sketch/kmv.h"

namespace sketchsample {

/// A predicate over 64-bit keys, restricted to a small closed language so
/// service queries can be parsed strictly and printed canonically.
struct SubpopPredicate {
  enum class Kind {
    kRange,  ///< a <= key <= b
    kMod,    ///< key % a == b  (a >= 1, b < a)
    kMask,   ///< (key & a) == b  (b must be a subset of mask a)
  };

  Kind kind = Kind::kRange;
  uint64_t a = 0;
  uint64_t b = 0;

  bool Matches(uint64_t key) const;
  /// Canonical text form, re-parseable by ParseSubpopFilter:
  /// "range:lo-hi", "mod:m-r", "mask:m-v" (all numbers decimal).
  std::string ToString() const;
};

/// Parses "range:lo-hi" | "mod:m-r" | "mask:m-v" (decimal u64 operands).
/// Throws std::invalid_argument on any malformed or out-of-domain input —
/// the service maps that to a 400.
SubpopPredicate ParseSubpopFilter(const std::string& text);

/// A subpopulation-weight estimate with its variance decomposition.
struct SubpopEstimate {
  double estimate = 0;       ///< pre-shed subpopulation weight (tuples)
  double kept_estimate = 0;  ///< weight among *kept* tuples only
  double variance = 0;       ///< total variance of `estimate`
  double sketch_variance = 0;    ///< bottom-k component (pre-shed scale)
  double sampling_variance = 0;  ///< Bernoulli-shedding component
  size_t matched = 0;        ///< retained entries matching the predicate
  size_t sample_size = 0;    ///< retained entries participating (k−1 or all)
  bool exact = false;        ///< sketch unsaturated: kept weight is exact
};

/// Estimates the total pre-shed weight (occurrence count) of the keys
/// matching `pred`, from a keyed bottom-k sketch built over the kept
/// stream at realized sampling rate `realized_p` in (0, 1]. Throws
/// std::invalid_argument for realized_p outside (0, 1].
SubpopEstimate EstimateSubpopulation(const KeyedKmvSketch& sketch,
                                     const SubpopPredicate& pred,
                                     double realized_p);

/// CLT interval for a subpopulation estimate, clamped below at zero
/// (weights are nonnegative).
ConfidenceInterval SubpopInterval(const SubpopEstimate& estimate,
                                  double level);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_CORE_SUBPOP_ESTIMATORS_H_
