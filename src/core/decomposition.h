// Unified variance decomposition across schemes and aggregates.
//
// Figures 1-2 of the paper plot the relative contribution of the sampling /
// sketch / interaction variance terms. For Bernoulli and both join kinds,
// and for the WR/WOR size-of-join, closed forms exist (src/core/variance.h).
// For the WR/WOR *self-join*, the paper omits the formula; here the total is
// computed exactly by the generic factorial-moment engine and split using
// the same canonical pattern as Eqs 27/28: the sketch term is
// (coef²/n)·Eq 16 with coef = α₂/α (WR) or α₁/α (WOR), and the interaction
// term is the remainder of the 1/n bracket.
#ifndef SKETCHSAMPLE_CORE_DECOMPOSITION_H_
#define SKETCHSAMPLE_CORE_DECOMPOSITION_H_

#include <cstdint>

#include "src/core/corrections.h"
#include "src/core/generic_variance.h"
#include "src/core/variance.h"
#include "src/data/frequency_vector.h"

namespace sketchsample {

/// Parameters of the sampling process for variance evaluation: p is used by
/// Bernoulli; sample_size_f/g by WR and WOR.
struct SamplingSpec {
  SamplingScheme scheme = SamplingScheme::kBernoulli;
  double p = 1.0;              ///< Bernoulli keep-probability for F
  double q = 1.0;              ///< Bernoulli keep-probability for G
  uint64_t sample_size_f = 0;  ///< WR/WOR fixed sample size from F
  uint64_t sample_size_g = 0;  ///< WR/WOR fixed sample size from G
};

/// Variance decomposition of the averaged sketch-over-sample size-of-join
/// estimator for any scheme (closed forms; Eqs 25/27/28).
VarianceTerms CombinedJoinVariance(const SamplingSpec& spec,
                                   const FrequencyVector& f,
                                   const FrequencyVector& g, size_t n);

/// Variance decomposition of the averaged corrected self-join estimator.
/// Bernoulli uses the closed form (Eq 26); WR/WOR use the generic engine
/// (the formulas the paper omits).
VarianceTerms CombinedSelfJoinVariance(const SamplingSpec& spec,
                                       const FrequencyVector& f, size_t n);

// ---------------------------------------------------------------------------
// Hybrid sampling: each relation may use a different sampling process —
// e.g. a Bernoulli-shed live stream joined against a WOR scan of a stored
// relation. The paper analyzes homogeneous pairs only; the generic
// factorial-moment engine handles the mixed case because the two sampling
// processes are independent.
// ---------------------------------------------------------------------------

/// Sampling description of one relation.
struct RelationSampling {
  SamplingScheme scheme = SamplingScheme::kBernoulli;
  double p = 1.0;            ///< Bernoulli keep-probability
  uint64_t sample_size = 0;  ///< WR/WOR fixed sample size
};

/// The per-relation unbiasing factor c with E[f'_i] = c·f_i (p for
/// Bernoulli, α = m/|F| for WR/WOR). Join estimates over independently
/// sampled relations are corrected by 1/(c_f·c_g) even across schemes.
double RelationSamplingScale(const RelationSampling& sampling,
                             uint64_t population);

/// Correction for the hybrid size-of-join estimator.
Correction HybridJoinCorrection(const RelationSampling& sampling_f,
                                uint64_t population_f,
                                const RelationSampling& sampling_g,
                                uint64_t population_g);

/// Exact moments of the averaged hybrid sketch-over-sample join estimator
/// (sampling term + 1/n bracket), via the generic engine.
GenericJoinVariance HybridJoinVariance(const FrequencyVector& f,
                                       const RelationSampling& sampling_f,
                                       const FrequencyVector& g,
                                       const RelationSampling& sampling_g);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_CORE_DECOMPOSITION_H_
