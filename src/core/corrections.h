// Bias corrections that turn raw (sketch or sample) aggregates into unbiased
// estimators of the full-data aggregates (§III, §V-A of the paper).
//
// Every estimator in the paper has the shape
//
//   X = scale · RAW − shift
//
// where RAW is the uncorrected aggregate over the sample (Σ f'_i g'_i for
// sampling, S·T or S² for sketches — the ξ expectations make the sketch case
// reduce to the sampling case). Because scale > 0 the correction is a
// monotone affine map, so it commutes with the mean/median combining used by
// averaged AGMS and F-AGMS rows and can be applied once to the combined raw
// estimate.
//
// The self-join corrections subtract a term proportional to the sample size:
// random (Σ f'_i = |F'|) for Bernoulli, deterministic for WR/WOR.
#ifndef SKETCHSAMPLE_CORE_CORRECTIONS_H_
#define SKETCHSAMPLE_CORE_CORRECTIONS_H_

#include <cstdint>

#include "src/sampling/coefficients.h"

namespace sketchsample {

/// The three sampling processes the paper instantiates (§III-B/D/E).
enum class SamplingScheme {
  kBernoulli,
  kWithReplacement,
  kWithoutReplacement,
};

/// Name for diagnostics: "bernoulli", "wr", "wor".
const char* SamplingSchemeName(SamplingScheme scheme);

/// Affine correction X = scale·raw − shift.
struct Correction {
  double scale = 1.0;
  double shift = 0.0;

  double Apply(double raw) const { return scale * raw - shift; }
};

/// Size-of-join over Bernoulli samples (Prop 3/13): X = raw/(p·q).
/// Requires p, q in (0, 1].
Correction BernoulliJoinCorrection(double p, double q);

/// Self-join over a Bernoulli sample (Prop 4/14):
/// X = raw/p² − (1−p)/p² · |F'| where |F'| is the observed sample size.
/// Requires p in (0, 1].
Correction BernoulliSelfJoinCorrection(double p, uint64_t sample_size);

/// Size-of-join over WR samples (Prop 5/15): X = raw/(α·β).
Correction WrJoinCorrection(const SamplingCoefficients& f,
                            const SamplingCoefficients& g);

/// Self-join over a WR sample (§III-D): X = raw/(α·α₂) − |F|/α₂.
/// Requires a sample of at least 2 tuples (α₂ > 0).
Correction WrSelfJoinCorrection(const SamplingCoefficients& f);

/// Size-of-join over WOR samples (Prop 6/16): X = raw/(α·β).
Correction WorJoinCorrection(const SamplingCoefficients& f,
                             const SamplingCoefficients& g);

/// Self-join over a WOR sample (§III-E): X = raw/(α·α₁) − (1−α₁)/α₁ · |F|.
/// Requires a sample of at least 2 tuples (α₁ > 0).
Correction WorSelfJoinCorrection(const SamplingCoefficients& f);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_CORE_CORRECTIONS_H_
