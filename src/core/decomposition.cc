#include "src/core/decomposition.h"

#include <stdexcept>

#include "src/core/generic_variance.h"

namespace sketchsample {

VarianceTerms CombinedJoinVariance(const SamplingSpec& spec,
                                   const FrequencyVector& f,
                                   const FrequencyVector& g, size_t n) {
  const JoinStatistics s = ComputeJoinStatistics(f, g);
  switch (spec.scheme) {
    case SamplingScheme::kBernoulli:
      return BernoulliJoinVariance(s, spec.p, spec.q, n);
    case SamplingScheme::kWithReplacement: {
      const auto cf = ComputeCoefficients(static_cast<uint64_t>(s.f1),
                                          spec.sample_size_f);
      const auto cg = ComputeCoefficients(static_cast<uint64_t>(s.g1),
                                          spec.sample_size_g);
      return WrJoinVariance(s, cf, cg, n);
    }
    case SamplingScheme::kWithoutReplacement: {
      const auto cf = ComputeCoefficients(static_cast<uint64_t>(s.f1),
                                          spec.sample_size_f);
      const auto cg = ComputeCoefficients(static_cast<uint64_t>(s.g1),
                                          spec.sample_size_g);
      return WorJoinVariance(s, cf, cg, n);
    }
  }
  throw std::invalid_argument("unknown sampling scheme");
}

VarianceTerms CombinedSelfJoinVariance(const SamplingSpec& spec,
                                       const FrequencyVector& f, size_t n) {
  const JoinStatistics s = ComputeJoinStatistics(f, f);
  if (spec.scheme == SamplingScheme::kBernoulli) {
    return BernoulliSelfJoinVariance(s, spec.p, n);
  }

  // WR / WOR: exact total from the generic engine, canonical split.
  const auto coef = ComputeCoefficients(static_cast<uint64_t>(s.f1),
                                        spec.sample_size_f);
  FrequencyMomentModel model =
      spec.scheme == SamplingScheme::kWithReplacement
          ? FrequencyMomentModel::WithReplacement(f, spec.sample_size_f)
          : FrequencyMomentModel::WithoutReplacement(f, spec.sample_size_f);
  const Correction correction =
      spec.scheme == SamplingScheme::kWithReplacement
          ? WrSelfJoinCorrection(coef)
          : WorSelfJoinCorrection(coef);
  const GenericSelfJoinVariance gv = ComputeGenericSelfJoinVariance(
      model, correction.scale, correction.shift, /*random_shift=*/false);

  VarianceTerms v;
  v.n = n;
  const double dn = static_cast<double>(n);
  v.sampling = gv.sampling_term;
  const double sketch_coef = spec.scheme == SamplingScheme::kWithReplacement
                                 ? coef.alpha2 / coef.alpha
                                 : coef.alpha1 / coef.alpha;
  v.sketch = sketch_coef * sketch_coef * AgmsSelfJoinVariance(s) / dn;
  v.interaction = gv.bracket / dn - v.sketch;
  return v;
}

namespace {

FrequencyMomentModel MakeModel(const FrequencyVector& freq,
                               const RelationSampling& sampling) {
  switch (sampling.scheme) {
    case SamplingScheme::kBernoulli:
      return FrequencyMomentModel::Bernoulli(freq, sampling.p);
    case SamplingScheme::kWithReplacement:
      return FrequencyMomentModel::WithReplacement(freq,
                                                   sampling.sample_size);
    case SamplingScheme::kWithoutReplacement:
      return FrequencyMomentModel::WithoutReplacement(freq,
                                                      sampling.sample_size);
  }
  throw std::invalid_argument("unknown sampling scheme");
}

}  // namespace

double RelationSamplingScale(const RelationSampling& sampling,
                             uint64_t population) {
  if (sampling.scheme == SamplingScheme::kBernoulli) {
    if (!(sampling.p > 0.0) || sampling.p > 1.0) {
      throw std::invalid_argument("Bernoulli p must be in (0, 1]");
    }
    return sampling.p;
  }
  if (population == 0 || sampling.sample_size == 0) {
    throw std::invalid_argument(
        "WR/WOR sampling scale needs positive population and sample size");
  }
  return static_cast<double>(sampling.sample_size) /
         static_cast<double>(population);
}

Correction HybridJoinCorrection(const RelationSampling& sampling_f,
                                uint64_t population_f,
                                const RelationSampling& sampling_g,
                                uint64_t population_g) {
  return Correction{1.0 / (RelationSamplingScale(sampling_f, population_f) *
                           RelationSamplingScale(sampling_g, population_g)),
                    0.0};
}

GenericJoinVariance HybridJoinVariance(const FrequencyVector& f,
                                       const RelationSampling& sampling_f,
                                       const FrequencyVector& g,
                                       const RelationSampling& sampling_g) {
  const double scale =
      HybridJoinCorrection(sampling_f, static_cast<uint64_t>(f.F1()),
                           sampling_g, static_cast<uint64_t>(g.F1()))
          .scale;
  return ComputeGenericJoinVariance(MakeModel(f, sampling_f),
                                    MakeModel(g, sampling_g), scale);
}

}  // namespace sketchsample
