#include "src/core/variance.h"

namespace sketchsample {

namespace {
double OffDiag(double sum_a, double sum_b, double diagonal) {
  return JoinStatistics::OffDiagonal(sum_a, sum_b, diagonal);
}
}  // namespace

double BernoulliJoinSamplingVariance(const JoinStatistics& s, double p,
                                     double q) {
  return (1.0 - p) / p * s.fg2 + (1.0 - q) / q * s.f2g +
         (1.0 - p) * (1.0 - q) / (p * q) * s.fg;
}

double BernoulliSelfJoinSamplingVariance(const JoinStatistics& s, double p) {
  return (1.0 - p) / (p * p * p) *
         (4.0 * p * p * s.f3 + 2.0 * p * (1.0 - 3.0 * p) * s.f2 -
          p * (2.0 - 3.0 * p) * s.f1);
}

// NOTE: the paper prints the middle coefficients of Eq 10 as |F|αβ₂ and
// |G|α₂β. Deriving from the multinomial moments (and validating against
// exact enumeration of the sample space — see tests/generic_variance_test.cc
// — and Monte-Carlo runs of the real pipeline) gives β₂ and α₂ instead; the
// printed versions are off by a factor of |F|α = |F'| (resp. |G|β = |G'|)
// and explode for full-size samples. The corrected coefficients also match
// the structure of the WOR formula (Eq 11) and the Bernoulli formula (Eq 6)
// in the small-fraction limit. The same correction applies to the
// interaction term of Eq 27 below.
double WrJoinSamplingVariance(const JoinStatistics& s,
                              const SamplingCoefficients& f,
                              const SamplingCoefficients& g) {
  return 1.0 / (f.alpha * g.alpha) *
         (s.fg + g.alpha2 * s.fg2 + f.alpha2 * s.f2g +
          (f.alpha2 * g.alpha2 - f.alpha * g.alpha) * s.fg * s.fg);
}

double WorJoinSamplingVariance(const JoinStatistics& s,
                               const SamplingCoefficients& f,
                               const SamplingCoefficients& g) {
  return 1.0 / (f.alpha * g.alpha) *
         ((1.0 - f.alpha1) * (1.0 - g.alpha1) * s.fg +
          (1.0 - f.alpha1) * g.alpha1 * s.fg2 +
          f.alpha1 * (1.0 - g.alpha1) * s.f2g +
          (f.alpha1 * g.alpha1 - f.alpha * g.alpha) * s.fg * s.fg);
}

double AgmsJoinVariance(const JoinStatistics& s) {
  return s.f2 * s.g2 + s.fg * s.fg - 2.0 * s.f2g2;
}

double AgmsSelfJoinVariance(const JoinStatistics& s) {
  return 2.0 * (s.f2 * s.f2 - s.f4);
}

VarianceTerms BernoulliJoinVariance(const JoinStatistics& s, double p,
                                    double q, size_t n) {
  VarianceTerms v;
  v.n = n;
  const double dn = static_cast<double>(n);
  v.sampling = BernoulliJoinSamplingVariance(s, p, q);
  v.sketch = AgmsJoinVariance(s) / dn;
  // Interaction: the off-diagonal analogue of the sampling variance (Eq 25,
  // third bracket).
  v.interaction =
      ((1.0 - p) / p * OffDiag(s.f1, s.g2, s.fg2) +
       (1.0 - q) / q * OffDiag(s.f2, s.g1, s.f2g) +
       (1.0 - p) * (1.0 - q) / (p * q) * OffDiag(s.f1, s.g1, s.fg)) /
      dn;
  return v;
}

VarianceTerms BernoulliSelfJoinVariance(const JoinStatistics& s, double p,
                                        size_t n) {
  VarianceTerms v;
  v.n = n;
  const double dn = static_cast<double>(n);
  v.sampling = BernoulliSelfJoinSamplingVariance(s, p);
  v.sketch = AgmsSelfJoinVariance(s) / dn;
  const double one_m_p = 1.0 - p;
  v.interaction = 2.0 / dn *
                  (one_m_p * one_m_p / (p * p) * OffDiag(s.f1, s.f1, s.f2) +
                   2.0 * one_m_p / p * OffDiag(s.f2, s.f1, s.f3));
  return v;
}

VarianceTerms WrJoinVariance(const JoinStatistics& s,
                             const SamplingCoefficients& f,
                             const SamplingCoefficients& g, size_t n) {
  VarianceTerms v;
  v.n = n;
  const double dn = static_cast<double>(n);
  v.sampling = WrJoinSamplingVariance(s, f, g);
  v.sketch = (f.alpha2 / f.alpha) * (g.alpha2 / g.alpha) *
             AgmsJoinVariance(s) / dn;
  // Interaction coefficients corrected as in WrJoinSamplingVariance above.
  v.interaction = 1.0 / (f.alpha * g.alpha) *
                  (OffDiag(s.f1, s.g1, s.fg) +
                   g.alpha2 * OffDiag(s.f1, s.g2, s.fg2) +
                   f.alpha2 * OffDiag(s.f2, s.g1, s.f2g)) /
                  dn;
  return v;
}

VarianceTerms WorJoinVariance(const JoinStatistics& s,
                              const SamplingCoefficients& f,
                              const SamplingCoefficients& g, size_t n) {
  VarianceTerms v;
  v.n = n;
  const double dn = static_cast<double>(n);
  v.sampling = WorJoinSamplingVariance(s, f, g);
  v.sketch = (f.alpha1 / f.alpha) * (g.alpha1 / g.alpha) *
             AgmsJoinVariance(s) / dn;
  v.interaction =
      1.0 / (f.alpha * g.alpha) *
      ((1.0 - f.alpha1) * (1.0 - g.alpha1) * OffDiag(s.f1, s.g1, s.fg) +
       (1.0 - f.alpha1) * g.alpha1 * OffDiag(s.f1, s.g2, s.fg2) +
       f.alpha1 * (1.0 - g.alpha1) * OffDiag(s.f2, s.g1, s.f2g)) /
      dn;
  return v;
}

}  // namespace sketchsample
