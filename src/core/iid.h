// Estimators for i.i.d. sample streams from UNKNOWN populations (§V's
// limiting case: "if the population is infinite, the entire process can be
// seen as sketching i.i.d. samples from an unknown distribution ... the
// frequencies in the original unknown population become densities").
//
// When the population size |F| is unknown (or infinite), absolute
// aggregates like Σ f_i² are undefined, but their normalized limits are
// not:
//
//   collision probability   κ(F)    = Σ_i p_i²      (self-join density)
//   match probability       κ(F,G)  = Σ_i p_i q_i   (join density)
//
// For an m-tuple i.i.d. sample with per-value counts f'_i (multinomial),
//   E[Σ f'_i (f'_i − 1)] = m(m−1) Σ p_i²,
// so (Σf'² − m) / (m(m−1)) is unbiased for κ — and because
// E[S²] = Σ E[f'²] for AGMS-style sketches, replacing Σf'² with the sketch
// estimate keeps the estimator unbiased with no stored sample. The match
// probability follows from the join estimate divided by m_f · m_g.
//
// These are the quantities online data-mining over sample streams actually
// needs (e.g. self-similarity of a generative model, cross-correlation of
// two models) without ever learning the population size.
#ifndef SKETCHSAMPLE_CORE_IID_H_
#define SKETCHSAMPLE_CORE_IID_H_

#include <cstdint>

#include "src/sketch/fagms.h"
#include "src/sketch/sketch.h"

namespace sketchsample {

/// Sketches an i.i.d. sample stream from an unknown distribution and
/// estimates its collision probability κ = Σ p_i² and, against another
/// estimator, the match probability Σ p_i q_i.
class IidStreamEstimator {
 public:
  explicit IidStreamEstimator(const SketchParams& params);

  /// Consumes one i.i.d. sample.
  void Update(uint64_t key);

  /// Unbiased estimate of Σ p_i² (needs at least 2 samples; throws
  /// std::logic_error earlier).
  double EstimateCollisionProbability() const;

  /// Unbiased estimate of Σ p_i q_i against another i.i.d. stream sketched
  /// with compatible params (each side needs at least 1 sample).
  double EstimateMatchProbability(const IidStreamEstimator& other) const;

  /// 1 / κ — the "effective support size" of the distribution (equals the
  /// domain size for a uniform distribution).
  double EstimateEffectiveSupport() const;

  uint64_t samples_seen() const { return samples_; }
  const FagmsSketch& sketch() const { return sketch_; }

 private:
  FagmsSketch sketch_;
  uint64_t samples_ = 0;
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_CORE_IID_H_
