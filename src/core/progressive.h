// Progressive estimators for online aggregation (§VI-C), with confidence
// intervals and a stopping rule.
//
// An online-aggregation engine scans a relation in random order and wants,
// at any point during the scan, (estimate, confidence interval) pairs that
// tighten as the scan proceeds — stopping early once the interval is tight
// enough. The scanned prefix is a WOR sample, so the §V corrections apply;
// the remaining question is how to attach an interval without knowing the
// frequency statistics the closed-form variances need.
//
// The classic batch-means construction is used: arriving tuples are dealt
// round-robin into K block sketches (over a random-order scan, round-robin
// assignment makes every block an independent-ish WOR sample). Each block
// yields a corrected estimate; the spread of the K block estimates gives a
// standard error. The reported point estimate comes from the *merged*
// sketch (all scanned tuples — strictly more accurate than any block), and
// the interval is centered on it:
//
//   CI = merged_estimate ± z_level · sd(block estimates) / sqrt(K)
//
// Because each block sketch carries the sketch error of a K-times-smaller
// sample while the merged sketch averages it away, this interval is
// conservative (it over-covers); tests verify coverage stays at or above
// the nominal level. This mirrors how online-aggregation engines trade a
// little interval width for assumption-free error tracking.
#ifndef SKETCHSAMPLE_CORE_PROGRESSIVE_H_
#define SKETCHSAMPLE_CORE_PROGRESSIVE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/confidence.h"
#include "src/sketch/fagms.h"
#include "src/sketch/sketch.h"

namespace sketchsample {

/// A progress snapshot from a progressive estimator.
struct ProgressiveReport {
  double estimate = 0;        ///< merged-sketch corrected estimate
  ConfidenceInterval ci;      ///< batch-means interval around it
  double fraction_scanned = 0;  ///< α of the (first) relation
  uint64_t tuples_scanned = 0;  ///< total tuples consumed so far
};

/// Progressive second-frequency-moment (self-join size) estimator over a
/// random-order scan of a relation with known size.
class ProgressiveF2Estimator {
 public:
  /// `population` is |F| (the relation being scanned); `num_blocks` K >= 2
  /// controls the batch-means variance estimate; `params` shapes each block
  /// sketch (all blocks share seeds so they can be merged).
  ProgressiveF2Estimator(uint64_t population, size_t num_blocks,
                         const SketchParams& params);

  /// Consumes the next scanned tuple.
  void Update(uint64_t key);

  /// Current snapshot at the given confidence level. Requires at least 2
  /// tuples per block (throws std::logic_error earlier in the scan).
  ProgressiveReport Report(double level) const;

  /// True once the interval half-width is below
  /// `relative_halfwidth` × |estimate| at the given level.
  bool HasConverged(double relative_halfwidth, double level) const;

  uint64_t tuples_scanned() const { return scanned_; }
  size_t num_blocks() const { return blocks_.size(); }

 private:
  uint64_t population_;
  uint64_t scanned_ = 0;
  std::vector<FagmsSketch> blocks_;
  std::vector<uint64_t> block_counts_;
};

/// Progressive size-of-join estimator over synchronized random-order scans
/// of two relations with known sizes.
class ProgressiveJoinEstimator {
 public:
  ProgressiveJoinEstimator(uint64_t population_f, uint64_t population_g,
                           size_t num_blocks, const SketchParams& params);

  /// Consumes the next scanned tuple of F (resp. G).
  void UpdateF(uint64_t key);
  void UpdateG(uint64_t key);

  /// Current snapshot; fraction_scanned reports the F-side fraction.
  /// Requires at least 1 tuple per block on both sides.
  ProgressiveReport Report(double level) const;

  bool HasConverged(double relative_halfwidth, double level) const;

  uint64_t tuples_scanned_f() const { return scanned_f_; }
  uint64_t tuples_scanned_g() const { return scanned_g_; }

 private:
  uint64_t population_f_;
  uint64_t population_g_;
  uint64_t scanned_f_ = 0;
  uint64_t scanned_g_ = 0;
  std::vector<FagmsSketch> blocks_f_;
  std::vector<FagmsSketch> blocks_g_;
  std::vector<uint64_t> block_counts_f_;
  std::vector<uint64_t> block_counts_g_;
};

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_CORE_PROGRESSIVE_H_
