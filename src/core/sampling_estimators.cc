#include "src/core/sampling_estimators.h"

#include "src/core/corrections.h"
#include "src/sampling/coefficients.h"

namespace sketchsample {

double BernoulliJoinSampleEstimate(const FrequencyVector& sample_f,
                                   const FrequencyVector& sample_g, double p,
                                   double q) {
  return BernoulliJoinCorrection(p, q).Apply(
      ExactJoinSize(sample_f, sample_g));
}

double BernoulliSelfJoinSampleEstimate(const FrequencyVector& sample_f,
                                       double p) {
  const uint64_t sample_size = static_cast<uint64_t>(sample_f.F1());
  return BernoulliSelfJoinCorrection(p, sample_size)
      .Apply(sample_f.F2());
}

double WrJoinSampleEstimate(const FrequencyVector& sample_f,
                            const FrequencyVector& sample_g,
                            uint64_t population_f, uint64_t population_g) {
  const auto cf = ComputeCoefficients(
      population_f, static_cast<uint64_t>(sample_f.F1()));
  const auto cg = ComputeCoefficients(
      population_g, static_cast<uint64_t>(sample_g.F1()));
  return WrJoinCorrection(cf, cg).Apply(ExactJoinSize(sample_f, sample_g));
}

double WrSelfJoinSampleEstimate(const FrequencyVector& sample_f,
                                uint64_t population_f) {
  const auto cf = ComputeCoefficients(
      population_f, static_cast<uint64_t>(sample_f.F1()));
  return WrSelfJoinCorrection(cf).Apply(sample_f.F2());
}

double WorJoinSampleEstimate(const FrequencyVector& sample_f,
                             const FrequencyVector& sample_g,
                             uint64_t population_f, uint64_t population_g) {
  const auto cf = ComputeCoefficients(
      population_f, static_cast<uint64_t>(sample_f.F1()));
  const auto cg = ComputeCoefficients(
      population_g, static_cast<uint64_t>(sample_g.F1()));
  return WorJoinCorrection(cf, cg).Apply(ExactJoinSize(sample_f, sample_g));
}

double WorSelfJoinSampleEstimate(const FrequencyVector& sample_f,
                                 uint64_t population_f) {
  const auto cf = ComputeCoefficients(
      population_f, static_cast<uint64_t>(sample_f.F1()));
  return WorSelfJoinCorrection(cf).Apply(sample_f.F2());
}

}  // namespace sketchsample
