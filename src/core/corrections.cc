#include "src/core/corrections.h"

#include <stdexcept>
#include <string>

namespace sketchsample {

const char* SamplingSchemeName(SamplingScheme scheme) {
  switch (scheme) {
    case SamplingScheme::kBernoulli:
      return "bernoulli";
    case SamplingScheme::kWithReplacement:
      return "wr";
    case SamplingScheme::kWithoutReplacement:
      return "wor";
  }
  return "unknown";
}

namespace {
void CheckProbability(double p, const char* name) {
  if (!(p > 0.0) || p > 1.0) {
    throw std::invalid_argument(std::string(name) +
                                " must be in (0, 1] for an unbiased scaling");
  }
}
}  // namespace

Correction BernoulliJoinCorrection(double p, double q) {
  CheckProbability(p, "p");
  CheckProbability(q, "q");
  return Correction{1.0 / (p * q), 0.0};
}

Correction BernoulliSelfJoinCorrection(double p, uint64_t sample_size) {
  CheckProbability(p, "p");
  const double scale = 1.0 / (p * p);
  const double shift =
      (1.0 - p) / (p * p) * static_cast<double>(sample_size);
  return Correction{scale, shift};
}

Correction WrJoinCorrection(const SamplingCoefficients& f,
                            const SamplingCoefficients& g) {
  if (f.alpha <= 0.0 || g.alpha <= 0.0) {
    throw std::invalid_argument("WR join correction needs non-empty samples");
  }
  return Correction{1.0 / (f.alpha * g.alpha), 0.0};
}

Correction WrSelfJoinCorrection(const SamplingCoefficients& f) {
  if (f.sample < 2) {
    throw std::invalid_argument(
        "WR self-join correction needs a sample of at least 2 tuples");
  }
  return Correction{1.0 / (f.alpha * f.alpha2),
                    static_cast<double>(f.population) / f.alpha2};
}

Correction WorJoinCorrection(const SamplingCoefficients& f,
                             const SamplingCoefficients& g) {
  if (f.alpha <= 0.0 || g.alpha <= 0.0) {
    throw std::invalid_argument("WOR join correction needs non-empty samples");
  }
  return Correction{1.0 / (f.alpha * g.alpha), 0.0};
}

Correction WorSelfJoinCorrection(const SamplingCoefficients& f) {
  if (f.sample < 2 || f.alpha1 <= 0.0) {
    throw std::invalid_argument(
        "WOR self-join correction needs a sample of at least 2 tuples");
  }
  return Correction{1.0 / (f.alpha * f.alpha1),
                    (1.0 - f.alpha1) / f.alpha1 *
                        static_cast<double>(f.population)};
}

}  // namespace sketchsample
