#include "src/core/sketch_estimators.h"

namespace sketchsample {

AgmsSketch BuildAgmsSketch(const std::vector<uint64_t>& stream,
                           const SketchParams& params) {
  AgmsSketch sketch(params);
  for (uint64_t key : stream) sketch.Update(key);
  return sketch;
}

FagmsSketch BuildFagmsSketch(const std::vector<uint64_t>& stream,
                             const SketchParams& params) {
  FagmsSketch sketch(params);
  for (uint64_t key : stream) sketch.Update(key);
  return sketch;
}

double FagmsJoinEstimate(const std::vector<uint64_t>& stream_f,
                         const std::vector<uint64_t>& stream_g,
                         const SketchParams& params) {
  const FagmsSketch sf = BuildFagmsSketch(stream_f, params);
  const FagmsSketch sg = BuildFagmsSketch(stream_g, params);
  return sf.EstimateJoin(sg);
}

double FagmsSelfJoinEstimate(const std::vector<uint64_t>& stream,
                             const SketchParams& params) {
  return BuildFagmsSketch(stream, params).EstimateSelfJoin();
}

}  // namespace sketchsample
