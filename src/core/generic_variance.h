// Generic variance engine: Props 9-12 evaluated exactly for ANY of the three
// sampling processes via factorial moments.
//
// The paper's generic analysis expresses the combined estimator's variance
// through moments of the sampling frequency random variables f'_i:
// E[f'_i], E[f'_i²], E[f'_i⁴], E[f'_i f'_j], E[f'_i² f'_j²], E[f'_i² f'_j].
// For all three sampling processes those joint moments factor through
// *falling-factorial* moments with a separable structure,
//
//     E[(f'_i)_(r) (f'_j)_(s)] = κ(r, s) · φ_r(i) · φ_s(j)    (i ≠ j),
//
//   Bernoulli(p):      φ_r(i) = (f_i)_(r) p^r,            κ(r,s) = 1
//   multinomial (WR):  φ_r(i) = (f_i/|F|)^r,              κ(r,s) = (m)_(r+s)
//   hypergeom. (WOR):  φ_r(i) = (f_i)_(r),                κ(r,s) = (m)_(r+s)/(|F|)_(r+s)
//
// so every double sum in Props 9-12 collapses to O(|I|) work. Raw moments
// follow from the Stirling expansion x^k = Σ_r S(k,r)(x)_(r).
//
// This engine serves three purposes:
//   1. an independent implementation that property tests check against the
//      paper's closed forms (Eqs 25-28);
//   2. the exact variance of the WR/WOR *self-join* estimators, which the
//      paper omits "due to lack of space";
//   3. exact variances for hybrid cases (different schemes per relation).
#ifndef SKETCHSAMPLE_CORE_GENERIC_VARIANCE_H_
#define SKETCHSAMPLE_CORE_GENERIC_VARIANCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/data/frequency_vector.h"

namespace sketchsample {

/// Falling factorial x·(x−1)·…·(x−r+1); r = 0 gives 1.
double FallingFactorial(double x, int r);

/// Precomputed factorial-moment structure of one sampled relation.
/// Supports r, s up to 4 (r + s up to 8).
class FrequencyMomentModel {
 public:
  /// Bernoulli sampling with keep-probability p ∈ (0, 1].
  static FrequencyMomentModel Bernoulli(const FrequencyVector& freq,
                                        double p);
  /// Sampling with replacement, fixed sample size m ≥ 1.
  static FrequencyMomentModel WithReplacement(const FrequencyVector& freq,
                                              uint64_t sample_size);
  /// Sampling without replacement, fixed sample size 1 ≤ m ≤ |F|.
  static FrequencyMomentModel WithoutReplacement(const FrequencyVector& freq,
                                                 uint64_t sample_size);

  /// κ(r, s) coupling constant; s = 0 gives the marginal constant.
  double Kappa(int r, int s = 0) const;

  /// Σ_i φ_r(i).
  double SumPhi(int r) const { return sum_phi_[r]; }
  /// φ_r(i) for one value (r ∈ 1..4).
  double Phi(size_t i, int r) const { return phi_[r][i]; }
  /// Σ_i φ_r(i) φ_s(i) (diagonal of the separable double sums).
  double SumPhiPhi(int r, int s) const;

  /// Per-value raw moment E[f'_i^k], k ∈ 1..4.
  double RawMoment(size_t i, int k) const;
  /// Σ_i E[f'_i^k].
  double RawMomentSum(int k) const;

  size_t domain_size() const { return phi_[1].size(); }

 private:
  enum class Kind { kBernoulli, kMultinomial, kHypergeometric };

  FrequencyMomentModel(Kind kind, const FrequencyVector& freq, double p,
                       uint64_t sample_size);

  Kind kind_;
  double population_ = 0;  // |F|
  double sample_ = 0;      // m (unused for Bernoulli)
  double p_ = 1.0;         // Bernoulli only
  // phi_[r][i], r in 1..4 (index 0 unused).
  std::vector<double> phi_[5];
  double sum_phi_[5] = {0, 0, 0, 0, 0};
};

/// Variance of the (averaged) sketch-over-sample size-of-join estimator
/// X = C · (1/n) Σ_k S_k T_k, decomposed into the n-independent sampling
/// part and the 1/n bracket (sketch + interaction), per Prop 11.
struct GenericJoinVariance {
  double expectation = 0;    ///< E[X] (should equal the true join size)
  double sampling_term = 0;  ///< C²(ΣΣ E[ff]E[gg] − E[X/C]²) — Eq 3
  double bracket = 0;        ///< C²(Σ E[f²] Σ E[g²] + ΣΣ − 2 Σ diag)

  /// Var of the n-way averaged estimator (Prop 11).
  double VarianceAveraged(size_t n) const {
    return sampling_term + bracket / static_cast<double>(n);
  }
  /// Var of the basic estimator (Prop 9; equals VarianceAveraged(1)).
  double VarianceBasic() const { return VarianceAveraged(1); }
};

/// Evaluates Prop 9/11 for independently sampled relations f and g.
/// `scale` is the unbiasing constant C (1/(pq) or 1/(αβ)).
GenericJoinVariance ComputeGenericJoinVariance(const FrequencyMomentModel& f,
                                               const FrequencyMomentModel& g,
                                               double scale);

/// Variance of the corrected self-join estimator
/// X = A · (1/n) Σ_k S_k² − shift, where the shift is B·|F'| with random
/// |F'| = Σ_i f'_i for Bernoulli (random_shift = true, B = shift_coefficient)
/// or a deterministic constant for WR/WOR (random_shift = false,
/// shift_coefficient = the constant itself).
struct GenericSelfJoinVariance {
  double expectation = 0;    ///< E[X] (should equal the true self-join size)
  double sampling_term = 0;  ///< n-independent part (incl. shift (co)variances)
  double bracket = 0;        ///< coefficient of 1/n: 2A²(ΣΣ E[f²f²] − Σ E[f⁴])

  double VarianceAveraged(size_t n) const {
    return sampling_term + bracket / static_cast<double>(n);
  }
  double VarianceBasic() const { return VarianceAveraged(1); }
};

/// Evaluates Prop 10/12 extended with the additive bias correction.
GenericSelfJoinVariance ComputeGenericSelfJoinVariance(
    const FrequencyMomentModel& f, double scale_a, double shift_coefficient,
    bool random_shift);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_CORE_GENERIC_VARIANCE_H_
