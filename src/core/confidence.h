// Confidence intervals from (estimate, variance) pairs (§II of the paper).
//
// The paper reports expected values and variances and notes that error
// guarantees follow either from distribution-free bounds (Chebyshev) or
// from a CLT/normal approximation. Both conversions live here.
#ifndef SKETCHSAMPLE_CORE_CONFIDENCE_H_
#define SKETCHSAMPLE_CORE_CONFIDENCE_H_

namespace sketchsample {

/// A two-sided confidence interval [low, high] at the stated level.
struct ConfidenceInterval {
  double low = 0;
  double high = 0;
  double level = 0;  ///< e.g. 0.95

  double HalfWidth() const { return (high - low) / 2.0; }
};

/// Quantile of the standard normal distribution (inverse Φ), |p| in (0, 1).
/// Acklam's rational approximation refined by one Halley step; absolute
/// error below 1e-9 over the full range.
double NormalQuantile(double p);

/// CLT-based interval: estimate ± z_{(1+level)/2} · sqrt(variance).
/// Appropriate for averaged estimators (Prop 11/12) where the CLT applies.
ConfidenceInterval CltInterval(double estimate, double variance,
                               double level);

/// Distribution-free Chebyshev interval:
/// estimate ± sqrt(variance / (1 − level)). Wider, but requires nothing
/// beyond the first two moments.
ConfidenceInterval ChebyshevInterval(double estimate, double variance,
                                     double level);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_CORE_CONFIDENCE_H_
