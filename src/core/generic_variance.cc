#include "src/core/generic_variance.h"

#include <stdexcept>
#include <string>

namespace sketchsample {

namespace {
// Stirling numbers of the second kind S(k, r) for k, r in 1..4:
// x^k = Σ_r S(k, r) (x)_(r).
constexpr double kStirling[5][5] = {
    {0, 0, 0, 0, 0},
    {0, 1, 0, 0, 0},
    {0, 1, 1, 0, 0},
    {0, 1, 3, 1, 0},
    {0, 1, 7, 6, 1},
};

void CheckOrder(int r, int lo, int hi, const char* what) {
  if (r < lo || r > hi) {
    throw std::out_of_range(std::string(what) + " order out of range");
  }
}
}  // namespace

double FallingFactorial(double x, int r) {
  double result = 1.0;
  for (int k = 0; k < r; ++k) result *= (x - static_cast<double>(k));
  return result;
}

FrequencyMomentModel FrequencyMomentModel::Bernoulli(
    const FrequencyVector& freq, double p) {
  if (!(p > 0.0) || p > 1.0) {
    throw std::invalid_argument("Bernoulli moment model needs p in (0, 1]");
  }
  return FrequencyMomentModel(Kind::kBernoulli, freq, p, 0);
}

FrequencyMomentModel FrequencyMomentModel::WithReplacement(
    const FrequencyVector& freq, uint64_t sample_size) {
  if (sample_size == 0) {
    throw std::invalid_argument("WR moment model needs a non-empty sample");
  }
  return FrequencyMomentModel(Kind::kMultinomial, freq, 1.0, sample_size);
}

FrequencyMomentModel FrequencyMomentModel::WithoutReplacement(
    const FrequencyVector& freq, uint64_t sample_size) {
  if (sample_size == 0 ||
      static_cast<double>(sample_size) > freq.F1()) {
    throw std::invalid_argument(
        "WOR moment model needs 1 <= sample size <= |F|");
  }
  return FrequencyMomentModel(Kind::kHypergeometric, freq, 1.0, sample_size);
}

FrequencyMomentModel::FrequencyMomentModel(Kind kind,
                                           const FrequencyVector& freq,
                                           double p, uint64_t sample_size)
    : kind_(kind),
      population_(freq.F1()),
      sample_(static_cast<double>(sample_size)),
      p_(p) {
  const size_t dom = freq.domain_size();
  for (int r = 1; r <= 4; ++r) phi_[r].resize(dom);
  for (size_t i = 0; i < dom; ++i) {
    const double fi = static_cast<double>(freq.count(i));
    for (int r = 1; r <= 4; ++r) {
      double value = 0;
      switch (kind_) {
        case Kind::kBernoulli: {
          double pr = 1.0;
          for (int k = 0; k < r; ++k) pr *= p_;
          value = FallingFactorial(fi, r) * pr;
          break;
        }
        case Kind::kMultinomial: {
          const double pi = fi / population_;
          value = 1.0;
          for (int k = 0; k < r; ++k) value *= pi;
          break;
        }
        case Kind::kHypergeometric:
          value = FallingFactorial(fi, r);
          break;
      }
      phi_[r][i] = value;
      sum_phi_[r] += value;
    }
  }
}

double FrequencyMomentModel::Kappa(int r, int s) const {
  CheckOrder(r, 1, 4, "kappa r");
  CheckOrder(s, 0, 4, "kappa s");
  switch (kind_) {
    case Kind::kBernoulli:
      return 1.0;
    case Kind::kMultinomial:
      return FallingFactorial(sample_, r + s);
    case Kind::kHypergeometric:
      return FallingFactorial(sample_, r + s) /
             FallingFactorial(population_, r + s);
  }
  return 0.0;
}

double FrequencyMomentModel::SumPhiPhi(int r, int s) const {
  CheckOrder(r, 1, 4, "phi r");
  CheckOrder(s, 1, 4, "phi s");
  double sum = 0;
  const auto& a = phi_[r];
  const auto& b = phi_[s];
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double FrequencyMomentModel::RawMoment(size_t i, int k) const {
  CheckOrder(k, 1, 4, "raw moment");
  double moment = 0;
  for (int r = 1; r <= k; ++r) {
    moment += kStirling[k][r] * Kappa(r) * phi_[r][i];
  }
  return moment;
}

double FrequencyMomentModel::RawMomentSum(int k) const {
  CheckOrder(k, 1, 4, "raw moment");
  double moment = 0;
  for (int r = 1; r <= k; ++r) {
    moment += kStirling[k][r] * Kappa(r) * sum_phi_[r];
  }
  return moment;
}

GenericJoinVariance ComputeGenericJoinVariance(const FrequencyMomentModel& f,
                                               const FrequencyMomentModel& g,
                                               double scale) {
  if (f.domain_size() != g.domain_size()) {
    throw std::invalid_argument(
        "join variance needs matching domains (zero-pad the shorter vector)");
  }
  const size_t dom = f.domain_size();

  // Cross-relation diagonal sums of raw moments.
  double e1e1 = 0;    // Σ E[f'_i] E[g'_i]
  double e2e2 = 0;    // Σ E[f'_i²] E[g'_i²]
  double w_sum = 0;   // Σ φf1(i) φg1(i)
  double w2_sum = 0;  // Σ (φf1 φg1)²(i)
  for (size_t i = 0; i < dom; ++i) {
    e1e1 += f.RawMoment(i, 1) * g.RawMoment(i, 1);
    e2e2 += f.RawMoment(i, 2) * g.RawMoment(i, 2);
    const double w = f.Phi(i, 1) * g.Phi(i, 1);
    w_sum += w;
    w2_sum += w * w;
  }

  const double sum_e2f = f.RawMomentSum(2);
  const double sum_e2g = g.RawMomentSum(2);

  // ΣΣ_{i,j} E[f'_i f'_j] E[g'_i g'_j]:
  //   off-diagonal: κf(1,1) κg(1,1) ((Σw)² − Σw²), diagonal: Σ E[f²]E[g²].
  const double cross_all =
      f.Kappa(1, 1) * g.Kappa(1, 1) * (w_sum * w_sum - w2_sum) + e2e2;

  GenericJoinVariance out;
  out.expectation = scale * e1e1;
  const double scale2 = scale * scale;
  out.sampling_term = scale2 * (cross_all - e1e1 * e1e1);
  out.bracket = scale2 * (sum_e2f * sum_e2g + cross_all - 2.0 * e2e2);
  return out;
}

GenericSelfJoinVariance ComputeGenericSelfJoinVariance(
    const FrequencyMomentModel& f, double scale_a, double shift_coefficient,
    bool random_shift) {
  const double sum_e1 = f.RawMomentSum(1);
  const double sum_e2 = f.RawMomentSum(2);
  const double sum_e3 = f.RawMomentSum(3);
  const double sum_e4 = f.RawMomentSum(4);

  // ΣΣ_{i,j} E[f'_i² f'_j²]: expand squares via (x² = (x)₂ + x), using the
  // separable joint factorial moments off-diagonal and E[f'_i⁴] on-diagonal.
  double cross22 = sum_e4;
  for (int r = 1; r <= 2; ++r) {
    for (int s = 1; s <= 2; ++s) {
      cross22 += f.Kappa(r, s) *
                 (f.SumPhi(r) * f.SumPhi(s) - f.SumPhiPhi(r, s));
    }
  }

  // ΣΣ_{i,j} E[f'_i² f'_j]: off-diagonal via factorials, diagonal E[f'_i³].
  double cross21 = sum_e3;
  for (int r = 1; r <= 2; ++r) {
    cross21 += f.Kappa(r, 1) * (f.SumPhi(r) * f.SumPhi(1) -
                                f.SumPhiPhi(r, 1));
  }

  // ΣΣ_{i,j} E[f'_i f'_j].
  const double cross11 =
      f.Kappa(1, 1) * (f.SumPhi(1) * f.SumPhi(1) - f.SumPhiPhi(1, 1)) +
      sum_e2;

  const double var_avg_s2_sampling = cross22 - sum_e2 * sum_e2;
  const double var_m = cross11 - sum_e1 * sum_e1;
  const double cov_s2_m = cross21 - sum_e2 * sum_e1;

  GenericSelfJoinVariance out;
  const double a2 = scale_a * scale_a;
  if (random_shift) {
    const double b = shift_coefficient;
    out.expectation = scale_a * sum_e2 - b * sum_e1;
    out.sampling_term = a2 * var_avg_s2_sampling + b * b * var_m -
                        2.0 * scale_a * b * cov_s2_m;
  } else {
    out.expectation = scale_a * sum_e2 - shift_coefficient;
    out.sampling_term = a2 * var_avg_s2_sampling;
  }
  out.bracket = 2.0 * a2 * (cross22 - sum_e4);
  return out;
}

}  // namespace sketchsample
