// Plain sketch estimators (§IV) and one-shot builders.
//
// These are the no-sampling baselines (p = 1 / full-data sketching) that the
// combined estimators of src/core/sketch_over_sample.h are compared against,
// plus convenience builders used by tests, examples, and benches.
#ifndef SKETCHSAMPLE_CORE_SKETCH_ESTIMATORS_H_
#define SKETCHSAMPLE_CORE_SKETCH_ESTIMATORS_H_

#include <cstdint>
#include <vector>

#include "src/sketch/agms.h"
#include "src/sketch/fagms.h"
#include "src/sketch/sketch.h"

namespace sketchsample {

/// Builds an AGMS sketch over a materialized stream.
AgmsSketch BuildAgmsSketch(const std::vector<uint64_t>& stream,
                           const SketchParams& params);

/// Builds an F-AGMS sketch over a materialized stream.
FagmsSketch BuildFagmsSketch(const std::vector<uint64_t>& stream,
                             const SketchParams& params);

/// One-shot size-of-join estimate: sketches both streams with compatible
/// F-AGMS sketches and returns the median-of-rows estimate (Prop 7 applied
/// per bucket row).
double FagmsJoinEstimate(const std::vector<uint64_t>& stream_f,
                         const std::vector<uint64_t>& stream_g,
                         const SketchParams& params);

/// One-shot self-join size estimate over an F-AGMS sketch (Prop 8).
double FagmsSelfJoinEstimate(const std::vector<uint64_t>& stream,
                             const SketchParams& params);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_CORE_SKETCH_ESTIMATORS_H_
