// The sketch-over-samples estimators (§V) — the paper's contribution.
//
// Three deployment shapes, matching §VI:
//
//   * BernoulliSketchEstimator<SketchT> — load shedding: the estimator owns a
//     Bernoulli sampler that drops tuples *before* they reach the sketch;
//     supports both the coin-flip and the geometric-skip update paths.
//   * SampledStreamEstimator<SketchT> — WR / WOR: the input stream *is* the
//     sample (an i.i.d. generative stream, or the prefix of a random-order
//     scan); every tuple is sketched and only the estimation step changes.
//
// Both are templates over the sketch type; AgmsSketch and FagmsSketch are
// the supported instantiations (explicitly instantiated in the .cc).
// Because all corrections are monotone affine maps (scale > 0), they commute
// with the mean/median row-combining inside the sketches and are applied to
// the combined raw estimate.
#ifndef SKETCHSAMPLE_CORE_SKETCH_OVER_SAMPLE_H_
#define SKETCHSAMPLE_CORE_SKETCH_OVER_SAMPLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/corrections.h"
#include "src/sampling/bernoulli.h"
#include "src/sampling/coefficients.h"
#include "src/sketch/agms.h"
#include "src/sketch/countmin.h"
#include "src/sketch/fagms.h"
#include "src/sketch/fastcount.h"
#include "src/sketch/sketch.h"

namespace sketchsample {

/// Sketch over a Bernoulli sample (load shedding, §VI-A).
///
/// Estimates are corrected per Props 13/14. Two estimators participating in
/// a join must be built with the same SketchParams (so their sketches are
/// compatible) but may use different sampling probabilities p and q.
template <typename SketchT>
class BernoulliSketchEstimator {
 public:
  /// `p` in (0, 1]: the probability each tuple survives shedding.
  /// `sampler_seed` drives the sampling coins, independent of the sketch
  /// randomness in `params.seed`.
  BernoulliSketchEstimator(double p, const SketchParams& params,
                           uint64_t sampler_seed);

  /// Coin-flip path: one uniform draw per arriving tuple.
  void Update(uint64_t key);

  /// Skip path: processes a whole stream chunk doing work only for kept
  /// tuples (Olken skips), gathering them into a scratch buffer and feeding
  /// the sketch through one UpdateBatch call. Statistically identical to
  /// calling Update() per tuple (same skip-RNG draw sequence as before, so
  /// the kept set is unchanged). Returns the number of tuples kept.
  size_t ProcessStreamWithSkips(const std::vector<uint64_t>& stream);

  /// Self-join size estimate of the *full* stream (Prop 14 correction).
  double EstimateSelfJoin() const;

  /// Size-of-join estimate of the full streams (Prop 13 correction with
  /// this->p() as p and other.p() as q).
  double EstimateJoin(const BernoulliSketchEstimator& other) const;

  double p() const { return p_; }
  /// Tuples that arrived (kept + shed). Only the coin-flip path counts the
  /// shed tuples; the skip path adds the chunk sizes it was given.
  uint64_t tuples_seen() const { return seen_; }
  /// Tuples that survived shedding and were sketched (= |F'|).
  uint64_t tuples_sampled() const { return sampled_; }
  const SketchT& sketch() const { return sketch_; }

 private:
  double p_;
  BernoulliSampler coin_;
  GeometricSkipSampler skipper_;
  SketchT sketch_;
  std::vector<uint64_t> kept_;  // skip-path gather scratch
  uint64_t seen_ = 0;
  uint64_t sampled_ = 0;
};

/// Sketch of a stream that is itself a sample (WR: §VI-B, WOR: §VI-C).
///
/// Every arriving tuple is sketched; the population size |F| must be known
/// (WR: the generative model's population; WOR: the relation being scanned).
/// For WOR online aggregation, call Estimate* at any point during the scan —
/// the prefix seen so far is the sample and the corrections use the current
/// sample size.
template <typename SketchT>
class SampledStreamEstimator {
 public:
  /// `scheme` must be kWithReplacement or kWithoutReplacement.
  SampledStreamEstimator(SamplingScheme scheme, uint64_t population_size,
                         const SketchParams& params);

  /// Sketches one sample tuple.
  void Update(uint64_t key);

  /// Sketches a chunk of sample tuples.
  void UpdateAll(const std::vector<uint64_t>& sample);

  /// Self-join size estimate of the population (§III-D/E corrections).
  /// Requires at least 2 tuples seen.
  double EstimateSelfJoin() const;

  /// Size-of-join estimate of the populations (Prop 15/16 corrections).
  /// Schemes of the two estimators may differ only in population size, not
  /// in kind.
  double EstimateJoin(const SampledStreamEstimator& other) const;

  SamplingScheme scheme() const { return scheme_; }
  uint64_t population_size() const { return population_; }
  uint64_t sample_size() const { return sampled_; }
  /// Fraction of the population sampled so far (α).
  double SampleFraction() const;
  const SketchT& sketch() const { return sketch_; }

 private:
  SamplingCoefficients Coefficients() const;

  SamplingScheme scheme_;
  uint64_t population_;
  SketchT sketch_;
  uint64_t sampled_ = 0;
};

// Instantiated for all four sketch families. AGMS and F-AGMS are the
// analysis-backed choices; FastCount's raw estimates are also unbiased so
// the corrections carry over; Count-Min estimates are one-sided upper
// bounds, and the scale corrections preserve that property (the additive
// self-join shift does not, so treat corrected Count-Min self-joins as
// heuristics).
extern template class BernoulliSketchEstimator<AgmsSketch>;
extern template class BernoulliSketchEstimator<FagmsSketch>;
extern template class BernoulliSketchEstimator<CountMinSketch>;
extern template class BernoulliSketchEstimator<FastCountSketch>;
extern template class SampledStreamEstimator<AgmsSketch>;
extern template class SampledStreamEstimator<FagmsSketch>;
extern template class SampledStreamEstimator<CountMinSketch>;
extern template class SampledStreamEstimator<FastCountSketch>;

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_CORE_SKETCH_OVER_SAMPLE_H_
