// Closed-form variance formulas from the paper, evaluated exactly on
// frequency statistics (Eqs 6, 7, 10, 11, 14, 16 and the combined-estimator
// decompositions 25, 26, 27, 28).
//
// All functions take the JoinStatistics of the ORIGINAL (pre-sampling)
// frequency vectors; the sampling parameters enter through p/q or the
// α/β coefficient structs. Self-join formulas use the f-side moments only.
#ifndef SKETCHSAMPLE_CORE_VARIANCE_H_
#define SKETCHSAMPLE_CORE_VARIANCE_H_

#include <cstddef>

#include "src/data/frequency_vector.h"
#include "src/sampling/coefficients.h"

namespace sketchsample {

// ---------------------------------------------------------------------------
// Sampling-only estimator variances (§III).
// ---------------------------------------------------------------------------

/// Eq 6: Var of the Bernoulli-sample size-of-join estimator (Prop 3).
double BernoulliJoinSamplingVariance(const JoinStatistics& s, double p,
                                     double q);

/// Eq 7: Var of the Bernoulli-sample self-join estimator (Prop 4).
double BernoulliSelfJoinSamplingVariance(const JoinStatistics& s, double p);

/// Eq 10: Var of the WR-sample size-of-join estimator (Prop 5).
double WrJoinSamplingVariance(const JoinStatistics& s,
                              const SamplingCoefficients& f,
                              const SamplingCoefficients& g);

/// Eq 11: Var of the WOR-sample size-of-join estimator (Prop 6).
double WorJoinSamplingVariance(const JoinStatistics& s,
                               const SamplingCoefficients& f,
                               const SamplingCoefficients& g);

// ---------------------------------------------------------------------------
// Sketch-only estimator variances (§IV). These are per-basic-estimator;
// averaging n independent basic estimators divides them by n.
// ---------------------------------------------------------------------------

/// Eq 14: Var of the basic AGMS size-of-join estimator (Prop 7).
double AgmsJoinVariance(const JoinStatistics& s);

/// Eq 16: Var of the basic AGMS self-join estimator (Prop 8).
double AgmsSelfJoinVariance(const JoinStatistics& s);

// ---------------------------------------------------------------------------
// Combined sketch-over-sample estimator variances (§V). The paper's key
// structural result: Var = sampling + (1/n)·sketch + (1/n)·interaction.
// The struct stores each term with its 1/n factor already applied, so
// Total() is the actual estimator variance and the relative contributions
// plotted in Figs 1-2 are term / Total().
// ---------------------------------------------------------------------------

/// One evaluated decomposition of the averaged combined estimator variance.
struct VarianceTerms {
  double sampling = 0;     ///< sampling-estimator variance (n-independent)
  double sketch = 0;       ///< (1/n) × sketch-estimator variance
  double interaction = 0;  ///< (1/n) × interaction term
  size_t n = 1;            ///< number of averaged basic estimators

  double Total() const { return sampling + sketch + interaction; }
  double SamplingFraction() const { return sampling / Total(); }
  double SketchFraction() const { return sketch / Total(); }
  double InteractionFraction() const { return interaction / Total(); }
};

/// Eq 25 (Prop 13): averaged sketch over Bernoulli samples, size of join.
VarianceTerms BernoulliJoinVariance(const JoinStatistics& s, double p,
                                    double q, size_t n);

/// Eq 26 (Prop 14): averaged sketch over a Bernoulli sample, self-join size.
VarianceTerms BernoulliSelfJoinVariance(const JoinStatistics& s, double p,
                                        size_t n);

/// Eq 27 (Prop 15): averaged sketch over WR samples, size of join.
VarianceTerms WrJoinVariance(const JoinStatistics& s,
                             const SamplingCoefficients& f,
                             const SamplingCoefficients& g, size_t n);

/// Eq 28 (Prop 16): averaged sketch over WOR samples, size of join.
VarianceTerms WorJoinVariance(const JoinStatistics& s,
                              const SamplingCoefficients& f,
                              const SamplingCoefficients& g, size_t n);

}  // namespace sketchsample

#endif  // SKETCHSAMPLE_CORE_VARIANCE_H_
