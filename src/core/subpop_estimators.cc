#include "src/core/subpop_estimators.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace sketchsample {

namespace {

// Strict decimal u64 parse: the whole token, no sign, no whitespace.
uint64_t ParseOperand(const std::string& token) {
  if (token.empty() || token[0] == '-' || token[0] == '+' ||
      !std::isdigit(static_cast<unsigned char>(token[0]))) {
    throw std::invalid_argument("subpop filter operand is not a number");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (errno == ERANGE || end != token.c_str() + token.size()) {
    throw std::invalid_argument("subpop filter operand is not a number");
  }
  return static_cast<uint64_t>(value);
}

}  // namespace

bool SubpopPredicate::Matches(uint64_t key) const {
  switch (kind) {
    case Kind::kRange:
      return a <= key && key <= b;
    case Kind::kMod:
      return key % a == b;
    case Kind::kMask:
      return (key & a) == b;
  }
  return false;
}

std::string SubpopPredicate::ToString() const {
  const char* name = "range";
  switch (kind) {
    case Kind::kRange:
      name = "range";
      break;
    case Kind::kMod:
      name = "mod";
      break;
    case Kind::kMask:
      name = "mask";
      break;
  }
  return std::string(name) + ":" + std::to_string(a) + "-" +
         std::to_string(b);
}

SubpopPredicate ParseSubpopFilter(const std::string& text) {
  const size_t colon = text.find(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument(
        "subpop filter must be kind:a-b (range|mod|mask)");
  }
  const std::string kind = text.substr(0, colon);
  const std::string rest = text.substr(colon + 1);
  const size_t dash = rest.find('-');
  if (dash == std::string::npos) {
    throw std::invalid_argument(
        "subpop filter must be kind:a-b (range|mod|mask)");
  }
  SubpopPredicate pred;
  pred.a = ParseOperand(rest.substr(0, dash));
  pred.b = ParseOperand(rest.substr(dash + 1));
  if (kind == "range") {
    pred.kind = SubpopPredicate::Kind::kRange;
    if (pred.a > pred.b) {
      throw std::invalid_argument("subpop range filter needs lo <= hi");
    }
  } else if (kind == "mod") {
    pred.kind = SubpopPredicate::Kind::kMod;
    if (pred.a == 0 || pred.b >= pred.a) {
      throw std::invalid_argument(
          "subpop mod filter needs modulus >= 1 and residue < modulus");
    }
  } else if (kind == "mask") {
    pred.kind = SubpopPredicate::Kind::kMask;
    if ((pred.b & ~pred.a) != 0) {
      throw std::invalid_argument(
          "subpop mask filter needs value to be a subset of the mask");
    }
  } else {
    throw std::invalid_argument(
        "subpop filter kind must be range, mod, or mask");
  }
  return pred;
}

SubpopEstimate EstimateSubpopulation(const KeyedKmvSketch& sketch,
                                     const SubpopPredicate& pred,
                                     double realized_p) {
  if (!(realized_p > 0.0 && realized_p <= 1.0)) {
    throw std::invalid_argument("realized sampling rate must be in (0, 1]");
  }
  SubpopEstimate out;
  const std::vector<KeyedKmvSketch::Entry> entries = sketch.Entries();
  if (!sketch.saturated()) {
    // Every distinct kept key is retained: the kept weight is an exact
    // filtered sum, and only the shedding term contributes variance.
    out.exact = true;
    out.sample_size = entries.size();
    for (const KeyedKmvSketch::Entry& entry : entries) {
      if (pred.Matches(entry.key)) {
        out.kept_estimate += static_cast<double>(entry.weight);
        ++out.matched;
      }
    }
  } else {
    // Condition on the k-th smallest hash as the inclusion threshold u:
    // the other k−1 entries are distinct keys retained with probability u
    // each, so the Horvitz–Thompson sum over the matching ones estimates
    // the kept subpopulation weight with Cohen–Kaplan's conditional
    // variance (1−u)/u² · Σ w².
    const double u = sketch.Threshold01();
    out.sample_size = entries.size() - 1;  // the k-th entry is the threshold
    double weight_sum = 0;
    double weight_sq_sum = 0;
    for (size_t i = 0; i + 1 < entries.size(); ++i) {
      if (pred.Matches(entries[i].key)) {
        const double w = static_cast<double>(entries[i].weight);
        weight_sum += w;
        weight_sq_sum += w * w;
        ++out.matched;
      }
    }
    out.kept_estimate = weight_sum / u;
    out.sketch_variance = (1.0 - u) / (u * u) * weight_sq_sum;
  }
  // Undo the shedding: kept weight is Binomial(W, p), so dividing by p̂
  // scales the bottom-k variance by 1/p̂² and adds the binomial term
  // Ŵ_kept(1−p̂)/p̂² (estimating W(1−p)/p with observed quantities).
  const double p2 = realized_p * realized_p;
  out.estimate = out.kept_estimate / realized_p;
  out.sketch_variance /= p2;
  out.sampling_variance = out.kept_estimate * (1.0 - realized_p) / p2;
  out.variance = out.sketch_variance + out.sampling_variance;
  return out;
}

ConfidenceInterval SubpopInterval(const SubpopEstimate& estimate,
                                  double level) {
  ConfidenceInterval ci =
      CltInterval(estimate.estimate, estimate.variance, level);
  ci.low = std::max(0.0, ci.low);
  return ci;
}

}  // namespace sketchsample
