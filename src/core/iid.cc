#include "src/core/iid.h"

#include <stdexcept>

namespace sketchsample {

IidStreamEstimator::IidStreamEstimator(const SketchParams& params)
    : sketch_(params) {}

void IidStreamEstimator::Update(uint64_t key) {
  ++samples_;
  sketch_.Update(key);
}

double IidStreamEstimator::EstimateCollisionProbability() const {
  if (samples_ < 2) {
    throw std::logic_error(
        "collision probability needs at least 2 i.i.d. samples");
  }
  const double m = static_cast<double>(samples_);
  // E[raw] = Σ E[f'²] = m(m−1) Σp² + m.
  return (sketch_.EstimateSelfJoin() - m) / (m * (m - 1.0));
}

double IidStreamEstimator::EstimateMatchProbability(
    const IidStreamEstimator& other) const {
  if (samples_ == 0 || other.samples_ == 0) {
    throw std::logic_error("match probability needs samples on both sides");
  }
  // Independent samples: E[Σ f'g'] = m_f m_g Σ p q.
  return sketch_.EstimateJoin(other.sketch_) /
         (static_cast<double>(samples_) *
          static_cast<double>(other.samples_));
}

double IidStreamEstimator::EstimateEffectiveSupport() const {
  const double kappa = EstimateCollisionProbability();
  if (kappa <= 0.0) {
    throw std::logic_error(
        "collision probability estimate is non-positive; sketch too small "
        "or sample too short for a support estimate");
  }
  return 1.0 / kappa;
}

}  // namespace sketchsample
