#include "src/core/progressive.h"

#include <cmath>
#include <stdexcept>

#include "src/core/corrections.h"
#include "src/sampling/coefficients.h"
#include "src/util/stats.h"

namespace sketchsample {

namespace {

// Merges a set of same-seed block sketches into one sketch holding all
// scanned tuples.
FagmsSketch MergeBlocks(const std::vector<FagmsSketch>& blocks) {
  FagmsSketch merged = blocks.front();
  for (size_t b = 1; b < blocks.size(); ++b) merged.Merge(blocks[b]);
  return merged;
}

// Batch-means interval around `center` from per-block estimates.
ConfidenceInterval BatchMeansInterval(double center,
                                      const std::vector<double>& block_est,
                                      double level) {
  RunningStats spread;
  for (double x : block_est) spread.Add(x);
  const double se = spread.StdError();
  const double z = NormalQuantile(0.5 + level / 2.0);
  return ConfidenceInterval{center - z * se, center + z * se, level};
}

}  // namespace

ProgressiveF2Estimator::ProgressiveF2Estimator(uint64_t population,
                                               size_t num_blocks,
                                               const SketchParams& params)
    : population_(population) {
  if (population == 0) {
    throw std::invalid_argument("population must be positive");
  }
  if (num_blocks < 2) {
    throw std::invalid_argument("batch means needs at least 2 blocks");
  }
  blocks_.reserve(num_blocks);
  for (size_t b = 0; b < num_blocks; ++b) blocks_.emplace_back(params);
  block_counts_.assign(num_blocks, 0);
}

void ProgressiveF2Estimator::Update(uint64_t key) {
  const size_t block = scanned_ % blocks_.size();
  blocks_[block].Update(key);
  ++block_counts_[block];
  ++scanned_;
}

ProgressiveReport ProgressiveF2Estimator::Report(double level) const {
  for (uint64_t count : block_counts_) {
    if (count < 2) {
      throw std::logic_error(
          "progressive report needs at least 2 tuples per block");
    }
  }
  ProgressiveReport report;
  report.tuples_scanned = scanned_;
  report.fraction_scanned =
      static_cast<double>(scanned_) / static_cast<double>(population_);

  const FagmsSketch merged = MergeBlocks(blocks_);
  report.estimate =
      WorSelfJoinCorrection(ComputeCoefficients(population_, scanned_))
          .Apply(merged.EstimateSelfJoin());

  std::vector<double> block_estimates;
  block_estimates.reserve(blocks_.size());
  for (size_t b = 0; b < blocks_.size(); ++b) {
    block_estimates.push_back(
        WorSelfJoinCorrection(
            ComputeCoefficients(population_, block_counts_[b]))
            .Apply(blocks_[b].EstimateSelfJoin()));
  }
  report.ci = BatchMeansInterval(report.estimate, block_estimates, level);
  return report;
}

bool ProgressiveF2Estimator::HasConverged(double relative_halfwidth,
                                          double level) const {
  for (uint64_t count : block_counts_) {
    if (count < 2) return false;
  }
  const ProgressiveReport report = Report(level);
  if (report.estimate == 0) return false;
  return report.ci.HalfWidth() <=
         relative_halfwidth * std::abs(report.estimate);
}

ProgressiveJoinEstimator::ProgressiveJoinEstimator(uint64_t population_f,
                                                   uint64_t population_g,
                                                   size_t num_blocks,
                                                   const SketchParams& params)
    : population_f_(population_f), population_g_(population_g) {
  if (population_f == 0 || population_g == 0) {
    throw std::invalid_argument("populations must be positive");
  }
  if (num_blocks < 2) {
    throw std::invalid_argument("batch means needs at least 2 blocks");
  }
  blocks_f_.reserve(num_blocks);
  blocks_g_.reserve(num_blocks);
  for (size_t b = 0; b < num_blocks; ++b) {
    blocks_f_.emplace_back(params);
    blocks_g_.emplace_back(params);
  }
  block_counts_f_.assign(num_blocks, 0);
  block_counts_g_.assign(num_blocks, 0);
}

void ProgressiveJoinEstimator::UpdateF(uint64_t key) {
  const size_t block = scanned_f_ % blocks_f_.size();
  blocks_f_[block].Update(key);
  ++block_counts_f_[block];
  ++scanned_f_;
}

void ProgressiveJoinEstimator::UpdateG(uint64_t key) {
  const size_t block = scanned_g_ % blocks_g_.size();
  blocks_g_[block].Update(key);
  ++block_counts_g_[block];
  ++scanned_g_;
}

ProgressiveReport ProgressiveJoinEstimator::Report(double level) const {
  for (size_t b = 0; b < blocks_f_.size(); ++b) {
    if (block_counts_f_[b] < 1 || block_counts_g_[b] < 1) {
      throw std::logic_error(
          "progressive report needs at least 1 tuple per block per side");
    }
  }
  ProgressiveReport report;
  report.tuples_scanned = scanned_f_ + scanned_g_;
  report.fraction_scanned =
      static_cast<double>(scanned_f_) / static_cast<double>(population_f_);

  const FagmsSketch merged_f = MergeBlocks(blocks_f_);
  const FagmsSketch merged_g = MergeBlocks(blocks_g_);
  report.estimate =
      WorJoinCorrection(ComputeCoefficients(population_f_, scanned_f_),
                        ComputeCoefficients(population_g_, scanned_g_))
          .Apply(merged_f.EstimateJoin(merged_g));

  std::vector<double> block_estimates;
  block_estimates.reserve(blocks_f_.size());
  for (size_t b = 0; b < blocks_f_.size(); ++b) {
    block_estimates.push_back(
        WorJoinCorrection(
            ComputeCoefficients(population_f_, block_counts_f_[b]),
            ComputeCoefficients(population_g_, block_counts_g_[b]))
            .Apply(blocks_f_[b].EstimateJoin(blocks_g_[b])));
  }
  report.ci = BatchMeansInterval(report.estimate, block_estimates, level);
  return report;
}

bool ProgressiveJoinEstimator::HasConverged(double relative_halfwidth,
                                            double level) const {
  for (size_t b = 0; b < blocks_f_.size(); ++b) {
    if (block_counts_f_[b] < 1 || block_counts_g_[b] < 1) return false;
  }
  const ProgressiveReport report = Report(level);
  if (report.estimate == 0) return false;
  return report.ci.HalfWidth() <=
         relative_halfwidth * std::abs(report.estimate);
}

}  // namespace sketchsample
