#include "src/core/sketch_over_sample.h"

#include <stdexcept>

#include "src/util/metrics.h"

namespace sketchsample {

template <typename SketchT>
BernoulliSketchEstimator<SketchT>::BernoulliSketchEstimator(
    double p, const SketchParams& params, uint64_t sampler_seed)
    : p_(p),
      coin_(p, sampler_seed),
      skipper_(p, sampler_seed ^ 0x9e3779b97f4a7c15ULL),
      sketch_(params) {}

template <typename SketchT>
void BernoulliSketchEstimator<SketchT>::Update(uint64_t key) {
  ++seen_;
  if (coin_.Keep()) {
    ++sampled_;
    sketch_.Update(key);
  }
}

template <typename SketchT>
size_t BernoulliSketchEstimator<SketchT>::ProcessStreamWithSkips(
    const std::vector<uint64_t>& stream) {
  seen_ += stream.size();
  kept_.clear();
  size_t pos = skipper_.NextSkip();
  while (pos < stream.size()) {
    kept_.push_back(stream[pos]);
    pos += 1 + skipper_.NextSkip();
  }
  sketch_.UpdateBatch(kept_.data(), kept_.size());
  sampled_ += kept_.size();
  SKETCHSAMPLE_METRIC_ADD("sampling.shed.seen", stream.size());
  SKETCHSAMPLE_METRIC_ADD("sampling.shed.kept", kept_.size());
  return kept_.size();
}

template <typename SketchT>
double BernoulliSketchEstimator<SketchT>::EstimateSelfJoin() const {
  return BernoulliSelfJoinCorrection(p_, sampled_)
      .Apply(sketch_.EstimateSelfJoin());
}

template <typename SketchT>
double BernoulliSketchEstimator<SketchT>::EstimateJoin(
    const BernoulliSketchEstimator& other) const {
  return BernoulliJoinCorrection(p_, other.p_)
      .Apply(sketch_.EstimateJoin(other.sketch_));
}

template <typename SketchT>
SampledStreamEstimator<SketchT>::SampledStreamEstimator(
    SamplingScheme scheme, uint64_t population_size,
    const SketchParams& params)
    : scheme_(scheme), population_(population_size), sketch_(params) {
  if (scheme == SamplingScheme::kBernoulli) {
    throw std::invalid_argument(
        "use BernoulliSketchEstimator for Bernoulli sampling");
  }
  if (population_size == 0) {
    throw std::invalid_argument("population size must be positive");
  }
}

template <typename SketchT>
void SampledStreamEstimator<SketchT>::Update(uint64_t key) {
  ++sampled_;
  sketch_.Update(key);
}

template <typename SketchT>
void SampledStreamEstimator<SketchT>::UpdateAll(
    const std::vector<uint64_t>& sample) {
  sketch_.UpdateBatch(sample.data(), sample.size());
  sampled_ += sample.size();
}

template <typename SketchT>
SamplingCoefficients SampledStreamEstimator<SketchT>::Coefficients() const {
  return ComputeCoefficients(population_, sampled_);
}

template <typename SketchT>
double SampledStreamEstimator<SketchT>::SampleFraction() const {
  return static_cast<double>(sampled_) / static_cast<double>(population_);
}

template <typename SketchT>
double SampledStreamEstimator<SketchT>::EstimateSelfJoin() const {
  const auto coef = Coefficients();
  const Correction correction =
      scheme_ == SamplingScheme::kWithReplacement
          ? WrSelfJoinCorrection(coef)
          : WorSelfJoinCorrection(coef);
  return correction.Apply(sketch_.EstimateSelfJoin());
}

template <typename SketchT>
double SampledStreamEstimator<SketchT>::EstimateJoin(
    const SampledStreamEstimator& other) const {
  if (scheme_ != other.scheme_) {
    throw std::invalid_argument(
        "join of estimators with different sampling schemes");
  }
  const auto cf = Coefficients();
  const auto cg = other.Coefficients();
  const Correction correction = scheme_ == SamplingScheme::kWithReplacement
                                    ? WrJoinCorrection(cf, cg)
                                    : WorJoinCorrection(cf, cg);
  return correction.Apply(sketch_.EstimateJoin(other.sketch_));
}

template class BernoulliSketchEstimator<AgmsSketch>;
template class BernoulliSketchEstimator<FagmsSketch>;
template class BernoulliSketchEstimator<CountMinSketch>;
template class BernoulliSketchEstimator<FastCountSketch>;
template class SampledStreamEstimator<AgmsSketch>;
template class SampledStreamEstimator<FagmsSketch>;
template class SampledStreamEstimator<CountMinSketch>;
template class SampledStreamEstimator<FastCountSketch>;

}  // namespace sketchsample
