// Online-aggregation engine walkthrough: load TPC-H-lite into column-store
// tables, gather planner statistics from a partial scan, then run a
// progressive join-size query that stops as soon as its 95% confidence
// interval is within ±5% — long before the scan would finish.
#include <cstdio>

#include "src/data/frequency_vector.h"
#include "src/data/tpch_lite.h"
#include "src/engine/online_query.h"
#include "src/engine/scan.h"
#include "src/engine/table.h"
#include "src/util/table.h"

using namespace sketchsample;

int main() {
  std::printf("loading TPC-H-lite (scale 0.05) into tables...\n");
  const TpchLiteData data = GenerateTpchLite(0.05, 7);
  Table lineitem({"l_orderkey"});
  Table orders({"o_orderkey"});
  std::vector<std::vector<uint64_t>> l_cols = {data.lineitem};
  std::vector<std::vector<uint64_t>> o_cols = {data.orders};
  lineitem.AppendColumns(l_cols);
  orders.AppendColumns(o_cols);
  const double true_join =
      ExactJoinSize(data.lineitem_freq, data.orders_freq);
  std::printf("lineitem: %zu rows, orders: %zu rows, exact join = %.0f\n\n",
              lineitem.num_rows(), orders.num_rows(), true_join);

  // --- Planner statistics from a 5% scan. --------------------------------
  SketchParams stats_params;
  stats_params.rows = 1;
  stats_params.buckets = 4096;
  stats_params.seed = 31;
  ScanStatisticsCollector stats(lineitem, stats_params);
  RandomOrderScan stats_scan(lineitem, 33);
  for (size_t i = 0; i < lineitem.num_rows() / 20; ++i) {
    stats.ConsumeRow(*stats_scan.NextRow());
  }
  std::printf("planner stats after a 5%% scan of lineitem:\n");
  std::printf("  distinct(l_orderkey) ~ %.0f   (true: %zu)\n",
              stats.EstimateDistinct(0),
              data.lineitem_freq.DistinctValues());
  std::printf("  F2(l_orderkey)       ~ %.0f   (true: %.0f)\n\n",
              stats.EstimateSelfJoin(0),
              ExactSelfJoinSize(data.lineitem_freq));

  // --- The progressive query. --------------------------------------------
  OnlineQueryOptions options;
  options.sketch.rows = 1;
  options.sketch.buckets = 10000;
  options.sketch.seed = 35;
  options.num_blocks = 8;
  options.level = 0.95;
  options.scan_seed = 37;
  OnlineJoinQuery query(lineitem, "l_orderkey", orders, "o_orderkey",
                        options);

  std::printf("progressive |lineitem JOIN orders|:\n");
  TablePrinter progress({"scan %", "estimate", "ci low", "ci high", "err %"});
  while (!query.Done()) {
    query.Step(lineitem.num_rows() / 20);
    const ProgressiveReport report = query.Report();
    progress.AddRow({100.0 * report.fraction_scanned, report.estimate,
                     report.ci.low, report.ci.high,
                     100.0 * std::abs(report.estimate - true_join) /
                         true_join});
    if (report.ci.HalfWidth() <= 0.05 * report.estimate) break;
  }
  progress.Print();
  const ProgressiveReport final_report = query.Report();
  std::printf(
      "\nstopped at %.0f%% of the scan with a ±5%% interval; the exact\n"
      "answer %.0f %s inside [%.0f, %.0f].\n",
      100.0 * final_report.fraction_scanned, true_join,
      (final_report.ci.low <= true_join && true_join <= final_report.ci.high)
          ? "lies"
          : "is NOT",
      final_report.ci.low, final_report.ci.high);
  return 0;
}
