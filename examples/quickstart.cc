// Quickstart: sketch a stream, sketch a 10% sample of the same stream, and
// compare both against the exact answers.
//
//   $ ./examples/quickstart
//
// Walks through the three core objects of the library:
//   1. FagmsSketch             — the sketch itself (full-data baseline)
//   2. BernoulliSketchEstimator — sketch over a Bernoulli sample
//   3. CombinedJoinVariance     — the paper's error prediction (Eq 25)
#include <cstdio>

#include "src/core/confidence.h"
#include "src/core/decomposition.h"
#include "src/core/sketch_estimators.h"
#include "src/core/sketch_over_sample.h"
#include "src/data/frequency_vector.h"
#include "src/data/zipf.h"
#include "src/util/rng.h"

using namespace sketchsample;

int main() {
  // --- Generate a synthetic workload: two Zipf(1.0) relations. -----------
  const size_t kDomain = 20000;
  const uint64_t kTuples = 500000;
  const FrequencyVector f = ZipfFrequencies(kDomain, kTuples, 1.0);
  const FrequencyVector g = ZipfFrequencies(kDomain, kTuples, 1.0);
  auto stream_f = f.ToTupleStream();
  auto stream_g = g.ToTupleStream();
  Xoshiro256 shuffler(1);
  Shuffle(stream_f, shuffler);
  Shuffle(stream_g, shuffler);

  const double true_join = ExactJoinSize(f, g);
  const double true_f2 = ExactSelfJoinSize(f);
  std::printf("true size of join : %.0f\n", true_join);
  std::printf("true self-join    : %.0f\n\n", true_f2);

  // --- Full-stream sketching (the §IV baseline). -------------------------
  SketchParams params;
  params.rows = 1;
  params.buckets = 5000;
  params.scheme = XiScheme::kEh3;
  params.seed = 42;

  const FagmsSketch sketch_f = BuildFagmsSketch(stream_f, params);
  const FagmsSketch sketch_g = BuildFagmsSketch(stream_g, params);
  std::printf("full sketch join estimate      : %.0f  (%.2f%% error)\n",
              sketch_f.EstimateJoin(sketch_g),
              100.0 * std::abs(sketch_f.EstimateJoin(sketch_g) - true_join) /
                  true_join);

  // --- Sketch over a 10%% Bernoulli sample (the paper's contribution). ---
  const double p = 0.1;
  BernoulliSketchEstimator<FagmsSketch> est_f(p, params, /*sampler_seed=*/7);
  BernoulliSketchEstimator<FagmsSketch> est_g(p, params, /*sampler_seed=*/8);
  est_f.ProcessStreamWithSkips(stream_f);  // work only for kept tuples
  est_g.ProcessStreamWithSkips(stream_g);

  const double sampled_join = est_f.EstimateJoin(est_g);
  std::printf("10%%-sample sketch join estimate: %.0f  (%.2f%% error)\n",
              sampled_join,
              100.0 * std::abs(sampled_join - true_join) / true_join);
  std::printf("tuples sketched                : %llu of %llu (%.1f%%)\n",
              static_cast<unsigned long long>(est_f.tuples_sampled()),
              static_cast<unsigned long long>(est_f.tuples_seen()),
              100.0 * static_cast<double>(est_f.tuples_sampled()) /
                  static_cast<double>(est_f.tuples_seen()));

  const double sampled_f2 = est_f.EstimateSelfJoin();
  std::printf("10%%-sample self-join estimate  : %.0f  (%.2f%% error)\n\n",
              sampled_f2,
              100.0 * std::abs(sampled_f2 - true_f2) / true_f2);

  // --- Predicted error (Eq 25) and a 95% confidence interval. ------------
  SamplingSpec spec;
  spec.scheme = SamplingScheme::kBernoulli;
  spec.p = p;
  spec.q = p;
  const VarianceTerms v = CombinedJoinVariance(spec, f, g, params.buckets);
  const auto ci = CltInterval(sampled_join, v.Total(), 0.95);
  std::printf("predicted variance (Eq 25)     : %.3g\n", v.Total());
  std::printf("  sampling/sketch/interaction  : %.1f%% / %.1f%% / %.1f%%\n",
              100 * v.SamplingFraction(), 100 * v.SketchFraction(),
              100 * v.InteractionFraction());
  std::printf("95%% CI for the join           : [%.0f, %.0f]%s\n", ci.low,
              ci.high,
              (ci.low <= true_join && true_join <= ci.high)
                  ? "  (covers the truth)"
                  : "");
  return 0;
}
