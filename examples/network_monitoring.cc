// Network monitoring — the paper's §I motivation ("networking data ...
// arrival rates of billions of tuples per second"): a packet stream too
// fast to sketch in full is Bernoulli-shed at 1%, and from the single
// sketch hierarchy the monitor answers, continuously over a tumbling
// window:
//   * the self-join size (a standard DDoS indicator: traffic concentration),
//   * the current heavy-hitter flows,
//   * the number of active flows (via KMV),
// all scaled back to full-stream units by 1/p.
#include <cstdio>
#include <vector>

#include "src/data/zipf.h"
#include "src/sampling/bernoulli.h"
#include "src/sketch/heavy_hitters.h"
#include "src/sketch/kmv.h"
#include "src/stream/window.h"
#include "src/util/rng.h"
#include "src/util/table.h"

using namespace sketchsample;

int main() {
  constexpr size_t kFlows = 60000;       // flow-id domain
  constexpr double kShedP = 0.01;        // keep 1% of packets
  constexpr uint64_t kWindowSize = 20000;  // ~ kept packets per phase
  constexpr int kPhases = 6;
  constexpr uint64_t kPacketsPerPhase = 2000000;

  SketchParams params;
  params.rows = 5;
  params.buckets = 4096;
  params.scheme = XiScheme::kEh3;
  params.seed = 2026;

  TumblingWindowSketch window(kWindowSize, /*window_count=*/2, params);
  KmvSketch flows(2048, 7);
  BernoulliSampler shedder(kShedP, 99);
  Xoshiro256 rng(13);

  std::printf(
      "monitoring %d phases x %llu packets, shedding to %.0f%%...\n"
      "phases 2-3 contain a simulated hot flow (id 42)\n\n",
      kPhases, static_cast<unsigned long long>(kPacketsPerPhase),
      100 * kShedP);

  TablePrinter table({"phase", "est F2 (x1e9)", "active flows",
                      "top flow", "top flow pkts"});
  for (int phase = 0; phase < kPhases; ++phase) {
    const bool attack = phase == 2 || phase == 3;
    // Background traffic: Zipf(1.1) over flow ids; during the "attack"
    // phases one flow carries an extra 30% of all packets.
    ZipfSampler background(kFlows, 1.1);
    for (uint64_t pkt = 0; pkt < kPacketsPerPhase; ++pkt) {
      uint64_t flow = attack && rng.NextDouble() < 0.3
                          ? 42
                          : background.Next(rng);
      if (shedder.Keep()) {
        window.Update(flow);
        flows.Update(flow);
      }
    }
    // Read the dashboard: correct for shedding with 1/p (frequencies) and
    // 1/p² (second moment), as in Prop 13/14 with the shift term dropped —
    // the monitor wants trends, not unbiased absolutes.
    const double f2_scaled =
        window.EstimateSelfJoin() / (kShedP * kShedP) / 1e9;
    const auto top = TopKFrequent(window.WindowSketch(), kFlows, 1,
                                  1.0 / kShedP);
    table.AddRow({static_cast<double>(phase), f2_scaled,
                  flows.EstimateDistinct(),
                  static_cast<double>(top[0].key),
                  top[0].estimated_frequency});
  }
  table.Print();
  std::printf(
      "\nDuring the attack phases the windowed F2 jumps and flow 42\n"
      "surfaces as the top talker; after the attack the window expires the\n"
      "hot traffic and the dashboard returns to baseline — all computed\n"
      "from 1%% of the packets.\n");
  return 0;
}
