// Distributed sketching: shards sketch their partition of a stream (with
// load shedding), serialize their sketches, and a coordinator merges the
// deserialized sketches into global estimates.
//
// Because sketches are linear and the Bernoulli shedding decisions are
// independent across tuples, "shed then sketch on each shard, then merge"
// is distributionally identical to shedding and sketching the whole stream
// centrally — the corrections of §V apply to the merged sketch with the
// total kept-tuple count. The wire format is the library's serialization
// (src/sketch/serialize.h).
#include <cstdio>
#include <vector>

#include "src/core/corrections.h"
#include "src/data/frequency_vector.h"
#include "src/data/zipf.h"
#include "src/sampling/bernoulli.h"
#include "src/sketch/serialize.h"
#include "src/util/rng.h"
#include "src/util/table.h"

using namespace sketchsample;

namespace {

struct ShardResult {
  std::vector<uint8_t> wire;  // serialized partial sketch
  uint64_t seen = 0;
  uint64_t kept = 0;
};

// One shard's work: Bernoulli-shed its partition into a private sketch.
ShardResult RunShard(const std::vector<uint64_t>& partition, double p,
                     const SketchParams& params, uint64_t shard_id) {
  FagmsSketch sketch(params);
  BernoulliSampler sampler(p, MixSeed(params.seed, 0xd15c0 + shard_id));
  ShardResult result;
  result.seen = partition.size();
  for (uint64_t value : partition) {
    if (sampler.Keep()) {
      sketch.Update(value);
      ++result.kept;
    }
  }
  result.wire = SerializeSketch(sketch);
  return result;
}

}  // namespace

int main() {
  constexpr size_t kShards = 8;
  constexpr double kShedP = 0.1;
  const size_t kDomain = 20000;
  const uint64_t kTuples = 800000;

  std::printf("generating %llu-tuple Zipf(1.0) stream across %zu shards...\n",
              static_cast<unsigned long long>(kTuples), kShards);
  const FrequencyVector f = ZipfFrequencies(kDomain, kTuples, 1.0);
  auto stream = f.ToTupleStream();
  Xoshiro256 rng(4);
  Shuffle(stream, rng);
  const double truth = f.F2();

  SketchParams params;
  params.rows = 1;
  params.buckets = 5000;
  params.scheme = XiScheme::kEh3;
  params.seed = 123;  // every shard must share the sketch seed

  // Scatter: each shard processes a contiguous partition.
  std::vector<ShardResult> shards;
  const size_t chunk = stream.size() / kShards;
  for (size_t s = 0; s < kShards; ++s) {
    const size_t begin = s * chunk;
    const size_t end = s + 1 == kShards ? stream.size() : begin + chunk;
    shards.push_back(RunShard(
        {stream.begin() + begin, stream.begin() + end}, kShedP, params, s));
  }

  // Gather: deserialize and merge; sum the kept-tuple counts for the
  // Bernoulli self-join correction.
  FagmsSketch merged = DeserializeFagms(shards[0].wire);
  uint64_t total_kept = shards[0].kept;
  size_t wire_bytes = shards[0].wire.size();
  TablePrinter table({"shard", "tuples seen", "tuples kept", "wire bytes"});
  table.AddRow({0.0, static_cast<double>(shards[0].seen),
                static_cast<double>(shards[0].kept),
                static_cast<double>(shards[0].wire.size())});
  for (size_t s = 1; s < kShards; ++s) {
    merged.Merge(DeserializeFagms(shards[s].wire));
    total_kept += shards[s].kept;
    wire_bytes += shards[s].wire.size();
    table.AddRow({static_cast<double>(s),
                  static_cast<double>(shards[s].seen),
                  static_cast<double>(shards[s].kept),
                  static_cast<double>(shards[s].wire.size())});
  }
  table.Print();

  const double estimate = BernoulliSelfJoinCorrection(kShedP, total_kept)
                              .Apply(merged.EstimateSelfJoin());
  std::printf(
      "\ncoordinator received %zu bytes total (vs %llu tuples x 8 bytes "
      "raw)\n",
      wire_bytes, static_cast<unsigned long long>(kTuples));
  std::printf("true self-join size : %.0f\n", truth);
  std::printf("merged estimate     : %.0f  (%.2f%% error)\n", estimate,
              100.0 * std::abs(estimate - truth) / truth);
  return 0;
}
