// Online aggregation (§VI-C): while a TPC-H-lite warehouse is scanned in
// random order, sketches of the scanned prefixes provide progressively
// tighter estimates of |lineitem ⋈ orders| and F2(lineitem.l_orderkey) —
// long before the scan completes, and without storing any sample.
//
// This is the WOR deployment: the prefix of a random-order scan is a sample
// without replacement of the whole relation.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/core/sketch_over_sample.h"
#include "src/data/frequency_vector.h"
#include "src/data/tpch_lite.h"
#include "src/util/table.h"

using namespace sketchsample;

int main() {
  std::printf("generating TPC-H-lite (scale 0.05: 75K orders)...\n");
  const TpchLiteData data = GenerateTpchLite(0.05, 2026);
  const double true_join =
      ExactJoinSize(data.lineitem_freq, data.orders_freq);
  const double true_f2 = ExactSelfJoinSize(data.lineitem_freq);
  std::printf("exact |lineitem JOIN orders| = %.0f\n", true_join);
  std::printf("exact F2(l_orderkey)         = %.0f\n\n", true_f2);

  SketchParams params;
  params.rows = 1;
  params.buckets = 10000;
  params.scheme = XiScheme::kEh3;
  params.seed = 31;

  SampledStreamEstimator<FagmsSketch> lineitem(
      SamplingScheme::kWithoutReplacement, data.lineitem.size(), params);
  SampledStreamEstimator<FagmsSketch> orders(
      SamplingScheme::kWithoutReplacement, data.orders.size(), params);

  TablePrinter table({"scan %", "join estimate", "join err", "F2 estimate",
                      "F2 err"});
  size_t pos_l = 0, pos_o = 0;
  for (double fraction : {0.01, 0.02, 0.05, 0.10, 0.25, 0.50, 1.00}) {
    const size_t target_l =
        static_cast<size_t>(fraction *
                            static_cast<double>(data.lineitem.size()));
    const size_t target_o = static_cast<size_t>(
        fraction * static_cast<double>(data.orders.size()));
    for (; pos_l < target_l; ++pos_l) lineitem.Update(data.lineitem[pos_l]);
    for (; pos_o < target_o; ++pos_o) orders.Update(data.orders[pos_o]);

    const double join = lineitem.EstimateJoin(orders);
    const double f2 = lineitem.EstimateSelfJoin();
    table.AddRow({100.0 * fraction, join,
                  std::abs(join - true_join) / true_join, f2,
                  std::abs(f2 - true_f2) / true_f2});
  }
  table.Print();
  std::printf(
      "\nAfter ~10%% of the scan the estimates are already stable; at 100%%\n"
      "the WOR correction becomes the identity and only sketch error\n"
      "remains. An online-aggregation engine reads these numbers (plus the\n"
      "Eq 28 confidence bounds) to answer long scans early.\n");
  return 0;
}
