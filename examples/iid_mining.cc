// Data-mining over i.i.d. samples (§VI-B): a generative model draws samples
// with replacement from a hidden population; the stream of samples is all we
// see, and it is too large to store. Sketching the sample stream and
// applying the WR corrections recovers properties of the hidden population:
// its second frequency moment and its correlation (size of join) with a
// second generative model.
#include <cstdio>
#include <vector>

#include "src/core/sketch_over_sample.h"
#include "src/data/frequency_vector.h"
#include "src/data/zipf.h"
#include "src/util/rng.h"
#include "src/util/table.h"

using namespace sketchsample;

int main() {
  // Two hidden populations the miner never materializes.
  const size_t kDomain = 30000;
  const uint64_t kPopulation = 1000000;
  const FrequencyVector pop_a = ZipfFrequencies(kDomain, kPopulation, 1.2);
  const FrequencyVector pop_b = ZipfFrequencies(kDomain, kPopulation, 0.8);
  const double true_f2 = ExactSelfJoinSize(pop_a);
  const double true_join = ExactJoinSize(pop_a, pop_b);
  std::printf("hidden population A: F2 = %.0f\n", true_f2);
  std::printf("hidden correlation |A JOIN B| = %.0f\n\n", true_join);

  SketchParams params;
  params.rows = 1;
  params.buckets = 8192;
  params.scheme = XiScheme::kEh3;
  params.seed = 5;

  // The generative models: i.i.d. draws from the populations (materialized
  // here only to drive the simulation; the miner sees just the draws).
  const auto relation_a = pop_a.ToTupleStream();
  const auto relation_b = pop_b.ToTupleStream();
  Xoshiro256 rng(77);

  TablePrinter table({"samples seen", "fraction", "F2 estimate", "F2 err",
                      "join estimate", "join err"});
  SampledStreamEstimator<FagmsSketch> est_a(
      SamplingScheme::kWithReplacement, kPopulation, params);
  SampledStreamEstimator<FagmsSketch> est_b(
      SamplingScheme::kWithReplacement, kPopulation, params);

  const std::vector<uint64_t> checkpoints = {1000,  5000,   20000,
                                             50000, 100000, 200000};
  uint64_t emitted = 0;
  for (uint64_t checkpoint : checkpoints) {
    // Stream more i.i.d. samples until the checkpoint.
    while (emitted < checkpoint) {
      est_a.Update(relation_a[rng.NextBounded(relation_a.size())]);
      est_b.Update(relation_b[rng.NextBounded(relation_b.size())]);
      ++emitted;
    }
    const double f2 = est_a.EstimateSelfJoin();
    const double join = est_a.EstimateJoin(est_b);
    table.AddRow({static_cast<double>(checkpoint), est_a.SampleFraction(),
                  f2, std::abs(f2 - true_f2) / true_f2, join,
                  std::abs(join - true_join) / true_join});
  }
  table.Print();
  std::printf(
      "\nThe error stabilizes once the sample captures the distribution —\n"
      "streaming more i.i.d. samples past ~10%% of the population size\n"
      "does not improve the estimate (Fig 5/6 of the paper).\n");
  return 0;
}
