// Load shedding (§VI-A): sketch a stream that arrives faster than the
// sketch can absorb, by shedding tuples with Bernoulli sampling in front of
// the sketch — using the streaming-pipeline substrate.
//
// The example builds the pipeline   source -> ShedOperator(p) -> sketch
// for several shedding rates, measures the achieved throughput, and shows
// that the corrected estimates stay accurate while the per-tuple work drops
// roughly like p (with the skip-based path).
#include <cstdio>
#include <vector>

#include "src/core/sketch_over_sample.h"
#include "src/data/frequency_vector.h"
#include "src/data/zipf.h"
#include "src/stream/operators.h"
#include "src/stream/pipeline.h"
#include "src/stream/source.h"
#include "src/util/rng.h"
#include "src/util/table.h"
#include "src/util/timer.h"

using namespace sketchsample;

int main() {
  const size_t kDomain = 50000;
  const uint64_t kTuples = 2000000;
  const double kSkew = 1.0;

  // Materialize the stream once so every shedding rate sees identical data,
  // and compute the exact answer for comparison.
  std::printf("generating %llu-tuple Zipf(%.1f) stream...\n",
              static_cast<unsigned long long>(kTuples), kSkew);
  std::vector<uint64_t> stream;
  {
    ZipfSampler sampler(kDomain, kSkew);
    Xoshiro256 rng(11);
    stream = sampler.Stream(kTuples, rng);
  }
  const double true_f2 =
      FrequencyVector::FromStream(stream, kDomain).F2();
  std::printf("true self-join size: %.0f\n\n", true_f2);

  SketchParams params;
  params.rows = 1;
  params.buckets = 5000;
  params.scheme = XiScheme::kEh3;
  params.seed = 99;

  TablePrinter table({"shed p", "sketched", "Mtuples/s", "speedup",
                      "estimate", "rel error"});
  double baseline_rate = 0;
  for (double p : {1.0, 0.5, 0.1, 0.01, 0.001}) {
    BernoulliSketchEstimator<FagmsSketch> est(p, params, 1234);
    Timer timer;
    est.ProcessStreamWithSkips(stream);
    const double seconds = timer.ElapsedSeconds();
    const double rate = static_cast<double>(kTuples) / seconds / 1e6;
    if (p == 1.0) baseline_rate = rate;
    const double estimate = est.EstimateSelfJoin();
    table.AddRow({p, static_cast<double>(est.tuples_sampled()), rate,
                  rate / baseline_rate, estimate,
                  std::abs(estimate - true_f2) / true_f2});
  }
  table.Print();
  std::printf(
      "\nThe skip-based shedder does work only for kept tuples, so the\n"
      "achievable stream rate grows roughly like 1/p while the estimate\n"
      "stays within a few percent (Eq 26 quantifies the degradation).\n");
  return 0;
}
