file(REMOVE_RECURSE
  "CMakeFiles/sketchsample_cli_lib.dir/cli.cc.o"
  "CMakeFiles/sketchsample_cli_lib.dir/cli.cc.o.d"
  "libsketchsample_cli_lib.a"
  "libsketchsample_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketchsample_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
