file(REMOVE_RECURSE
  "libsketchsample_cli_lib.a"
)
