# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sketchsample_cli_lib.
