# Empty compiler generated dependencies file for sketchsample_cli_lib.
# This may be replaced when dependencies are built.
