# Empty compiler generated dependencies file for sketchsample_cli.
# This may be replaced when dependencies are built.
