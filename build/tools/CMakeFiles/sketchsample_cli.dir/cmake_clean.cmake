file(REMOVE_RECURSE
  "CMakeFiles/sketchsample_cli.dir/main.cc.o"
  "CMakeFiles/sketchsample_cli.dir/main.cc.o.d"
  "sketchsample"
  "sketchsample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketchsample_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
