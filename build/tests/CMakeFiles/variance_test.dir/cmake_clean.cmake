file(REMOVE_RECURSE
  "CMakeFiles/variance_test.dir/variance_test.cc.o"
  "CMakeFiles/variance_test.dir/variance_test.cc.o.d"
  "variance_test"
  "variance_test.pdb"
  "variance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
