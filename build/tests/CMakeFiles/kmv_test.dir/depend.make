# Empty dependencies file for kmv_test.
# This may be replaced when dependencies are built.
