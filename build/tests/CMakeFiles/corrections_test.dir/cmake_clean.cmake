file(REMOVE_RECURSE
  "CMakeFiles/corrections_test.dir/corrections_test.cc.o"
  "CMakeFiles/corrections_test.dir/corrections_test.cc.o.d"
  "corrections_test"
  "corrections_test.pdb"
  "corrections_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corrections_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
