# Empty compiler generated dependencies file for corrections_test.
# This may be replaced when dependencies are built.
