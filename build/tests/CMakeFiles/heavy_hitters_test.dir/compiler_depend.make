# Empty compiler generated dependencies file for heavy_hitters_test.
# This may be replaced when dependencies are built.
