file(REMOVE_RECURSE
  "CMakeFiles/iid_test.dir/iid_test.cc.o"
  "CMakeFiles/iid_test.dir/iid_test.cc.o.d"
  "iid_test"
  "iid_test.pdb"
  "iid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
