# Empty compiler generated dependencies file for iid_test.
# This may be replaced when dependencies are built.
