file(REMOVE_RECURSE
  "CMakeFiles/dyadic_test.dir/dyadic_test.cc.o"
  "CMakeFiles/dyadic_test.dir/dyadic_test.cc.o.d"
  "dyadic_test"
  "dyadic_test.pdb"
  "dyadic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyadic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
