file(REMOVE_RECURSE
  "CMakeFiles/sampling_estimators_test.dir/sampling_estimators_test.cc.o"
  "CMakeFiles/sampling_estimators_test.dir/sampling_estimators_test.cc.o.d"
  "sampling_estimators_test"
  "sampling_estimators_test.pdb"
  "sampling_estimators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampling_estimators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
