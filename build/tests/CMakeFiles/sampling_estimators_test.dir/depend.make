# Empty dependencies file for sampling_estimators_test.
# This may be replaced when dependencies are built.
