file(REMOVE_RECURSE
  "CMakeFiles/estimator_matrix_test.dir/estimator_matrix_test.cc.o"
  "CMakeFiles/estimator_matrix_test.dir/estimator_matrix_test.cc.o.d"
  "estimator_matrix_test"
  "estimator_matrix_test.pdb"
  "estimator_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimator_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
