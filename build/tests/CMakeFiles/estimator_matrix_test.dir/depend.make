# Empty dependencies file for estimator_matrix_test.
# This may be replaced when dependencies are built.
