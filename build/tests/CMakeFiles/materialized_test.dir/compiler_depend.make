# Empty compiler generated dependencies file for materialized_test.
# This may be replaced when dependencies are built.
