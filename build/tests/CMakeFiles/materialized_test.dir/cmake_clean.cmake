file(REMOVE_RECURSE
  "CMakeFiles/materialized_test.dir/materialized_test.cc.o"
  "CMakeFiles/materialized_test.dir/materialized_test.cc.o.d"
  "materialized_test"
  "materialized_test.pdb"
  "materialized_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/materialized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
