# Empty compiler generated dependencies file for sketch_over_sample_test.
# This may be replaced when dependencies are built.
