file(REMOVE_RECURSE
  "CMakeFiles/sketch_over_sample_test.dir/sketch_over_sample_test.cc.o"
  "CMakeFiles/sketch_over_sample_test.dir/sketch_over_sample_test.cc.o.d"
  "sketch_over_sample_test"
  "sketch_over_sample_test.pdb"
  "sketch_over_sample_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_over_sample_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
