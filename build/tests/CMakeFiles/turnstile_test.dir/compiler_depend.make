# Empty compiler generated dependencies file for turnstile_test.
# This may be replaced when dependencies are built.
