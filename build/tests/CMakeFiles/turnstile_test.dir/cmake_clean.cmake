file(REMOVE_RECURSE
  "CMakeFiles/turnstile_test.dir/turnstile_test.cc.o"
  "CMakeFiles/turnstile_test.dir/turnstile_test.cc.o.d"
  "turnstile_test"
  "turnstile_test.pdb"
  "turnstile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turnstile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
