file(REMOVE_RECURSE
  "CMakeFiles/generic_variance_test.dir/generic_variance_test.cc.o"
  "CMakeFiles/generic_variance_test.dir/generic_variance_test.cc.o.d"
  "generic_variance_test"
  "generic_variance_test.pdb"
  "generic_variance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generic_variance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
