# Empty dependencies file for generic_variance_test.
# This may be replaced when dependencies are built.
