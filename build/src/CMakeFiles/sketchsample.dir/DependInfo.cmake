
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/confidence.cc" "src/CMakeFiles/sketchsample.dir/core/confidence.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/core/confidence.cc.o.d"
  "/root/repo/src/core/corrections.cc" "src/CMakeFiles/sketchsample.dir/core/corrections.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/core/corrections.cc.o.d"
  "/root/repo/src/core/decomposition.cc" "src/CMakeFiles/sketchsample.dir/core/decomposition.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/core/decomposition.cc.o.d"
  "/root/repo/src/core/generic_variance.cc" "src/CMakeFiles/sketchsample.dir/core/generic_variance.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/core/generic_variance.cc.o.d"
  "/root/repo/src/core/iid.cc" "src/CMakeFiles/sketchsample.dir/core/iid.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/core/iid.cc.o.d"
  "/root/repo/src/core/progressive.cc" "src/CMakeFiles/sketchsample.dir/core/progressive.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/core/progressive.cc.o.d"
  "/root/repo/src/core/sampling_estimators.cc" "src/CMakeFiles/sketchsample.dir/core/sampling_estimators.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/core/sampling_estimators.cc.o.d"
  "/root/repo/src/core/sketch_estimators.cc" "src/CMakeFiles/sketchsample.dir/core/sketch_estimators.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/core/sketch_estimators.cc.o.d"
  "/root/repo/src/core/sketch_over_sample.cc" "src/CMakeFiles/sketchsample.dir/core/sketch_over_sample.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/core/sketch_over_sample.cc.o.d"
  "/root/repo/src/core/variance.cc" "src/CMakeFiles/sketchsample.dir/core/variance.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/core/variance.cc.o.d"
  "/root/repo/src/data/frequency_vector.cc" "src/CMakeFiles/sketchsample.dir/data/frequency_vector.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/data/frequency_vector.cc.o.d"
  "/root/repo/src/data/tpch_lite.cc" "src/CMakeFiles/sketchsample.dir/data/tpch_lite.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/data/tpch_lite.cc.o.d"
  "/root/repo/src/data/zipf.cc" "src/CMakeFiles/sketchsample.dir/data/zipf.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/data/zipf.cc.o.d"
  "/root/repo/src/engine/online_query.cc" "src/CMakeFiles/sketchsample.dir/engine/online_query.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/engine/online_query.cc.o.d"
  "/root/repo/src/engine/scan.cc" "src/CMakeFiles/sketchsample.dir/engine/scan.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/engine/scan.cc.o.d"
  "/root/repo/src/engine/table.cc" "src/CMakeFiles/sketchsample.dir/engine/table.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/engine/table.cc.o.d"
  "/root/repo/src/prng/bch.cc" "src/CMakeFiles/sketchsample.dir/prng/bch.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/prng/bch.cc.o.d"
  "/root/repo/src/prng/cw.cc" "src/CMakeFiles/sketchsample.dir/prng/cw.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/prng/cw.cc.o.d"
  "/root/repo/src/prng/eh3.cc" "src/CMakeFiles/sketchsample.dir/prng/eh3.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/prng/eh3.cc.o.d"
  "/root/repo/src/prng/hash.cc" "src/CMakeFiles/sketchsample.dir/prng/hash.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/prng/hash.cc.o.d"
  "/root/repo/src/prng/materialized.cc" "src/CMakeFiles/sketchsample.dir/prng/materialized.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/prng/materialized.cc.o.d"
  "/root/repo/src/prng/mersenne61.cc" "src/CMakeFiles/sketchsample.dir/prng/mersenne61.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/prng/mersenne61.cc.o.d"
  "/root/repo/src/prng/tabulation.cc" "src/CMakeFiles/sketchsample.dir/prng/tabulation.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/prng/tabulation.cc.o.d"
  "/root/repo/src/prng/xi_registry.cc" "src/CMakeFiles/sketchsample.dir/prng/xi_registry.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/prng/xi_registry.cc.o.d"
  "/root/repo/src/sampling/bernoulli.cc" "src/CMakeFiles/sketchsample.dir/sampling/bernoulli.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/sampling/bernoulli.cc.o.d"
  "/root/repo/src/sampling/coefficients.cc" "src/CMakeFiles/sketchsample.dir/sampling/coefficients.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/sampling/coefficients.cc.o.d"
  "/root/repo/src/sampling/with_replacement.cc" "src/CMakeFiles/sketchsample.dir/sampling/with_replacement.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/sampling/with_replacement.cc.o.d"
  "/root/repo/src/sampling/without_replacement.cc" "src/CMakeFiles/sketchsample.dir/sampling/without_replacement.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/sampling/without_replacement.cc.o.d"
  "/root/repo/src/sketch/agms.cc" "src/CMakeFiles/sketchsample.dir/sketch/agms.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/sketch/agms.cc.o.d"
  "/root/repo/src/sketch/countmin.cc" "src/CMakeFiles/sketchsample.dir/sketch/countmin.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/sketch/countmin.cc.o.d"
  "/root/repo/src/sketch/dyadic.cc" "src/CMakeFiles/sketchsample.dir/sketch/dyadic.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/sketch/dyadic.cc.o.d"
  "/root/repo/src/sketch/fagms.cc" "src/CMakeFiles/sketchsample.dir/sketch/fagms.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/sketch/fagms.cc.o.d"
  "/root/repo/src/sketch/fastcount.cc" "src/CMakeFiles/sketchsample.dir/sketch/fastcount.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/sketch/fastcount.cc.o.d"
  "/root/repo/src/sketch/heavy_hitters.cc" "src/CMakeFiles/sketchsample.dir/sketch/heavy_hitters.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/sketch/heavy_hitters.cc.o.d"
  "/root/repo/src/sketch/kmv.cc" "src/CMakeFiles/sketchsample.dir/sketch/kmv.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/sketch/kmv.cc.o.d"
  "/root/repo/src/sketch/multiway.cc" "src/CMakeFiles/sketchsample.dir/sketch/multiway.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/sketch/multiway.cc.o.d"
  "/root/repo/src/sketch/serialize.cc" "src/CMakeFiles/sketchsample.dir/sketch/serialize.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/sketch/serialize.cc.o.d"
  "/root/repo/src/stream/parallel.cc" "src/CMakeFiles/sketchsample.dir/stream/parallel.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/stream/parallel.cc.o.d"
  "/root/repo/src/stream/pipeline.cc" "src/CMakeFiles/sketchsample.dir/stream/pipeline.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/stream/pipeline.cc.o.d"
  "/root/repo/src/stream/window.cc" "src/CMakeFiles/sketchsample.dir/stream/window.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/stream/window.cc.o.d"
  "/root/repo/src/util/distributions.cc" "src/CMakeFiles/sketchsample.dir/util/distributions.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/util/distributions.cc.o.d"
  "/root/repo/src/util/flags.cc" "src/CMakeFiles/sketchsample.dir/util/flags.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/util/flags.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/sketchsample.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/util/stats.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/sketchsample.dir/util/table.cc.o" "gcc" "src/CMakeFiles/sketchsample.dir/util/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
