file(REMOVE_RECURSE
  "libsketchsample.a"
)
