# Empty compiler generated dependencies file for sketchsample.
# This may be replaced when dependencies are built.
