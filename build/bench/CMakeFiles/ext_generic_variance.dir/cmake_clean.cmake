file(REMOVE_RECURSE
  "CMakeFiles/ext_generic_variance.dir/ext_generic_variance.cc.o"
  "CMakeFiles/ext_generic_variance.dir/ext_generic_variance.cc.o.d"
  "ext_generic_variance"
  "ext_generic_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_generic_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
