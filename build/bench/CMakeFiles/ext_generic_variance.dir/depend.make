# Empty dependencies file for ext_generic_variance.
# This may be replaced when dependencies are built.
