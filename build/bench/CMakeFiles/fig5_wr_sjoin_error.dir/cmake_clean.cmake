file(REMOVE_RECURSE
  "CMakeFiles/fig5_wr_sjoin_error.dir/fig5_wr_sjoin_error.cc.o"
  "CMakeFiles/fig5_wr_sjoin_error.dir/fig5_wr_sjoin_error.cc.o.d"
  "fig5_wr_sjoin_error"
  "fig5_wr_sjoin_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_wr_sjoin_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
