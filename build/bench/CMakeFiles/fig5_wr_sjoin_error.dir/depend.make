# Empty dependencies file for fig5_wr_sjoin_error.
# This may be replaced when dependencies are built.
