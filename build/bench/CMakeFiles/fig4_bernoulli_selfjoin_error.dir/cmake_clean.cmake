file(REMOVE_RECURSE
  "CMakeFiles/fig4_bernoulli_selfjoin_error.dir/fig4_bernoulli_selfjoin_error.cc.o"
  "CMakeFiles/fig4_bernoulli_selfjoin_error.dir/fig4_bernoulli_selfjoin_error.cc.o.d"
  "fig4_bernoulli_selfjoin_error"
  "fig4_bernoulli_selfjoin_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_bernoulli_selfjoin_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
