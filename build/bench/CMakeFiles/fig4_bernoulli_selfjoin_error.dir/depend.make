# Empty dependencies file for fig4_bernoulli_selfjoin_error.
# This may be replaced when dependencies are built.
