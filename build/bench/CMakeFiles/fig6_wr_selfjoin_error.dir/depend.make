# Empty dependencies file for fig6_wr_selfjoin_error.
# This may be replaced when dependencies are built.
