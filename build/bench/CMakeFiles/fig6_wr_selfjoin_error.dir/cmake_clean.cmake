file(REMOVE_RECURSE
  "CMakeFiles/fig6_wr_selfjoin_error.dir/fig6_wr_selfjoin_error.cc.o"
  "CMakeFiles/fig6_wr_selfjoin_error.dir/fig6_wr_selfjoin_error.cc.o.d"
  "fig6_wr_selfjoin_error"
  "fig6_wr_selfjoin_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_wr_selfjoin_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
