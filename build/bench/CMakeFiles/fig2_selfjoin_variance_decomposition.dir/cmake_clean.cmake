file(REMOVE_RECURSE
  "CMakeFiles/fig2_selfjoin_variance_decomposition.dir/fig2_selfjoin_variance_decomposition.cc.o"
  "CMakeFiles/fig2_selfjoin_variance_decomposition.dir/fig2_selfjoin_variance_decomposition.cc.o.d"
  "fig2_selfjoin_variance_decomposition"
  "fig2_selfjoin_variance_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_selfjoin_variance_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
