# Empty dependencies file for fig2_selfjoin_variance_decomposition.
# This may be replaced when dependencies are built.
