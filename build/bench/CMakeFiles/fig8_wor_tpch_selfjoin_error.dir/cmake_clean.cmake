file(REMOVE_RECURSE
  "CMakeFiles/fig8_wor_tpch_selfjoin_error.dir/fig8_wor_tpch_selfjoin_error.cc.o"
  "CMakeFiles/fig8_wor_tpch_selfjoin_error.dir/fig8_wor_tpch_selfjoin_error.cc.o.d"
  "fig8_wor_tpch_selfjoin_error"
  "fig8_wor_tpch_selfjoin_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_wor_tpch_selfjoin_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
