# Empty dependencies file for fig8_wor_tpch_selfjoin_error.
# This may be replaced when dependencies are built.
