file(REMOVE_RECURSE
  "CMakeFiles/bench_prng.dir/bench_prng.cc.o"
  "CMakeFiles/bench_prng.dir/bench_prng.cc.o.d"
  "bench_prng"
  "bench_prng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
