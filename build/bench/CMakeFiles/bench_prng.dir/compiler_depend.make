# Empty compiler generated dependencies file for bench_prng.
# This may be replaced when dependencies are built.
