# Empty dependencies file for fig3_bernoulli_sjoin_error.
# This may be replaced when dependencies are built.
