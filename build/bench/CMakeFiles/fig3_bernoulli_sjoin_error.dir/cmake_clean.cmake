file(REMOVE_RECURSE
  "CMakeFiles/fig3_bernoulli_sjoin_error.dir/fig3_bernoulli_sjoin_error.cc.o"
  "CMakeFiles/fig3_bernoulli_sjoin_error.dir/fig3_bernoulli_sjoin_error.cc.o.d"
  "fig3_bernoulli_sjoin_error"
  "fig3_bernoulli_sjoin_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_bernoulli_sjoin_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
