file(REMOVE_RECURSE
  "CMakeFiles/fig1_sjoin_variance_decomposition.dir/fig1_sjoin_variance_decomposition.cc.o"
  "CMakeFiles/fig1_sjoin_variance_decomposition.dir/fig1_sjoin_variance_decomposition.cc.o.d"
  "fig1_sjoin_variance_decomposition"
  "fig1_sjoin_variance_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_sjoin_variance_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
