# Empty dependencies file for fig1_sjoin_variance_decomposition.
# This may be replaced when dependencies are built.
