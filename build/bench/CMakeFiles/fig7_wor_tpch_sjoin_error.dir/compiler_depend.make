# Empty compiler generated dependencies file for fig7_wor_tpch_sjoin_error.
# This may be replaced when dependencies are built.
