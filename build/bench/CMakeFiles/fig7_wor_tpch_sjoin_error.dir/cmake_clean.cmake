file(REMOVE_RECURSE
  "CMakeFiles/fig7_wor_tpch_sjoin_error.dir/fig7_wor_tpch_sjoin_error.cc.o"
  "CMakeFiles/fig7_wor_tpch_sjoin_error.dir/fig7_wor_tpch_sjoin_error.cc.o.d"
  "fig7_wor_tpch_sjoin_error"
  "fig7_wor_tpch_sjoin_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_wor_tpch_sjoin_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
