file(REMOVE_RECURSE
  "CMakeFiles/ext_decomposition_wr_wor.dir/ext_decomposition_wr_wor.cc.o"
  "CMakeFiles/ext_decomposition_wr_wor.dir/ext_decomposition_wr_wor.cc.o.d"
  "ext_decomposition_wr_wor"
  "ext_decomposition_wr_wor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_decomposition_wr_wor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
