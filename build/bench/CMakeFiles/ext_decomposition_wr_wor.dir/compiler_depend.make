# Empty compiler generated dependencies file for ext_decomposition_wr_wor.
# This may be replaced when dependencies are built.
