file(REMOVE_RECURSE
  "CMakeFiles/bench_sketch_ablation.dir/bench_sketch_ablation.cc.o"
  "CMakeFiles/bench_sketch_ablation.dir/bench_sketch_ablation.cc.o.d"
  "bench_sketch_ablation"
  "bench_sketch_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sketch_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
