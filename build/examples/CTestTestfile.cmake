# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_load_shedding "/root/repo/build/examples/load_shedding")
set_tests_properties(example_load_shedding PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_iid_mining "/root/repo/build/examples/iid_mining")
set_tests_properties(example_iid_mining PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_online_aggregation "/root/repo/build/examples/online_aggregation")
set_tests_properties(example_online_aggregation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_distributed_sketching "/root/repo/build/examples/distributed_sketching")
set_tests_properties(example_distributed_sketching PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_engine_query "/root/repo/build/examples/engine_query")
set_tests_properties(example_engine_query PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_network_monitoring "/root/repo/build/examples/network_monitoring")
set_tests_properties(example_network_monitoring PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
