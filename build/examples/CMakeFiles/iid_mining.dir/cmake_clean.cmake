file(REMOVE_RECURSE
  "CMakeFiles/iid_mining.dir/iid_mining.cc.o"
  "CMakeFiles/iid_mining.dir/iid_mining.cc.o.d"
  "iid_mining"
  "iid_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iid_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
