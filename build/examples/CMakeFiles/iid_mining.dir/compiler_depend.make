# Empty compiler generated dependencies file for iid_mining.
# This may be replaced when dependencies are built.
