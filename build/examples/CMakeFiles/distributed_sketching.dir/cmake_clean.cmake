file(REMOVE_RECURSE
  "CMakeFiles/distributed_sketching.dir/distributed_sketching.cc.o"
  "CMakeFiles/distributed_sketching.dir/distributed_sketching.cc.o.d"
  "distributed_sketching"
  "distributed_sketching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_sketching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
