# Empty dependencies file for distributed_sketching.
# This may be replaced when dependencies are built.
