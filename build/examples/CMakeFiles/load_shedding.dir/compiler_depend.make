# Empty compiler generated dependencies file for load_shedding.
# This may be replaced when dependencies are built.
