file(REMOVE_RECURSE
  "CMakeFiles/load_shedding.dir/load_shedding.cc.o"
  "CMakeFiles/load_shedding.dir/load_shedding.cc.o.d"
  "load_shedding"
  "load_shedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_shedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
