file(REMOVE_RECURSE
  "CMakeFiles/engine_query.dir/engine_query.cc.o"
  "CMakeFiles/engine_query.dir/engine_query.cc.o.d"
  "engine_query"
  "engine_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
