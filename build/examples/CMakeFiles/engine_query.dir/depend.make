# Empty dependencies file for engine_query.
# This may be replaced when dependencies are built.
